//! The on-disk cache entry: one priced report as `pacq-cache/v1` JSON.
//!
//! The entry must round-trip **bit-exactly**: a cached report has to be
//! indistinguishable from a freshly computed one. Two encoding rules
//! make that hold over the workspace's float-backed JSON model:
//!
//! - every `u64` counter is written as a **decimal string** — an `f64`
//!   JSON number only represents integers exactly up to 2^53, and a
//!   large-shape sweep's bit counters can exceed that;
//! - every `f64` is written as a plain JSON number — the writer emits
//!   the shortest round-trip form, so parsing returns the identical
//!   bits (non-finite values cannot occur in a priced report).

use pacq_error::{PacqError, PacqResult};
use pacq_fp16::WeightPrecision;
use pacq_simt::{
    Architecture, EnergyReport, GemmShape, GemmStats, GeneralCoreOps, LevelTraffic, RfTraffic,
    Workload,
};
use pacq_trace::Json;

/// Schema identifier written into (and required of) every entry.
pub const ENTRY_SCHEMA: &str = "pacq-cache/v1";

/// The stable token for an architecture, used in cache keys and entries
/// (the `Display` form is presentation text, not a wire format).
pub const fn arch_token(arch: Architecture) -> &'static str {
    match arch {
        Architecture::StandardDequant => "std",
        Architecture::PackedK => "packedk",
        Architecture::Pacq => "pacq",
        Architecture::InputStationary => "is",
    }
}

/// Parses an [`arch_token`] back; `None` for anything else (callers
/// turn that into their own typed error — a corrupt cache entry decodes
/// as a miss, a malformed serve request as a protocol error).
pub fn parse_arch_token(token: &str) -> Option<Architecture> {
    match token {
        "std" => Some(Architecture::StandardDequant),
        "packedk" => Some(Architecture::PackedK),
        "pacq" => Some(Architecture::Pacq),
        "is" => Some(Architecture::InputStationary),
        _ => None,
    }
}

/// The stable token for a weight precision.
pub const fn precision_token(precision: WeightPrecision) -> &'static str {
    match precision {
        WeightPrecision::Int4 => "int4",
        WeightPrecision::Int2 => "int2",
    }
}

/// Parses a [`precision_token`] back; `None` for anything else.
pub fn parse_precision_token(token: &str) -> Option<WeightPrecision> {
    match token {
        "int4" => Some(WeightPrecision::Int4),
        "int2" => Some(WeightPrecision::Int2),
        _ => None,
    }
}

/// One memoized analysis result — the vocabulary-type mirror of the
/// core crate's `GemmReport` (this crate sits below `pacq`, so the
/// conversion lives there).
#[derive(Debug, Clone, PartialEq)]
pub struct CachedReport {
    /// The architecture simulated.
    pub arch: Architecture,
    /// The workload.
    pub workload: Workload,
    /// Raw simulator statistics.
    pub stats: GemmStats,
    /// Energy split in pJ.
    pub energy: EnergyReport,
    /// End-to-end latency in seconds.
    pub latency_s: f64,
    /// Energy-delay product in pJ·s.
    pub edp_pj_s: f64,
}

fn decode_error(what: impl Into<String>) -> PacqError {
    PacqError::invalid_input("cache::CachedReport::from_json", what.into())
}

fn set_u64(obj: &mut Json, field: &str, value: u64) {
    obj.set(field, Json::Str(value.to_string()));
}

fn get_u64(obj: &Json, field: &str) -> PacqResult<u64> {
    obj.get(field)
        .and_then(Json::as_str)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| decode_error(format!("missing or non-decimal u64 field `{field}`")))
}

fn get_f64(obj: &Json, field: &str) -> PacqResult<f64> {
    obj.get(field)
        .and_then(Json::as_num)
        .ok_or_else(|| decode_error(format!("missing numeric field `{field}`")))
}

impl CachedReport {
    /// Renders the entry document for `key` (the canonical key string is
    /// embedded so reads can reject digest collisions and `verify` can
    /// re-derive the expected filename).
    pub fn to_json(&self, key: &crate::CacheKey) -> Json {
        let mut shape = Json::object();
        set_u64(&mut shape, "m", self.workload.shape.m as u64);
        set_u64(&mut shape, "n", self.workload.shape.n as u64);
        set_u64(&mut shape, "k", self.workload.shape.k as u64);

        let mut rf = Json::object();
        set_u64(&mut rf, "a_reads", self.stats.rf.a_reads);
        set_u64(&mut rf, "b_reads", self.stats.rf.b_reads);
        set_u64(&mut rf, "c_reads", self.stats.rf.c_reads);
        set_u64(&mut rf, "c_writes", self.stats.rf.c_writes);
        set_u64(&mut rf, "a_bits", self.stats.rf.a_bits);
        set_u64(&mut rf, "b_bits", self.stats.rf.b_bits);
        set_u64(&mut rf, "c_bits", self.stats.rf.c_bits);

        let level = |t: &LevelTraffic| {
            let mut o = Json::object();
            set_u64(&mut o, "reads", t.reads);
            set_u64(&mut o, "writes", t.writes);
            set_u64(&mut o, "read_bits", t.read_bits);
            set_u64(&mut o, "write_bits", t.write_bits);
            o
        };

        let mut ops = Json::object();
        set_u64(&mut ops, "unpack_ops", self.stats.ops.unpack_ops);
        set_u64(&mut ops, "dequant_ops", self.stats.ops.dequant_ops);
        set_u64(&mut ops, "inline_converts", self.stats.ops.inline_converts);
        set_u64(&mut ops, "offset_fixups", self.stats.ops.offset_fixups);
        set_u64(&mut ops, "scale_applies", self.stats.ops.scale_applies);
        set_u64(&mut ops, "scale_fetches", self.stats.ops.scale_fetches);

        let mut stats = Json::object();
        stats.set("rf", rf);
        stats.set("l1", level(&self.stats.l1));
        stats.set("dram", level(&self.stats.dram));
        set_u64(&mut stats, "buffer_fills", self.stats.buffer_fills);
        set_u64(&mut stats, "buffer_evictions", self.stats.buffer_evictions);
        set_u64(
            &mut stats,
            "fetch_instructions",
            self.stats.fetch_instructions,
        );
        set_u64(&mut stats, "tc_cycles", self.stats.tc_cycles);
        set_u64(&mut stats, "general_cycles", self.stats.general_cycles);
        set_u64(&mut stats, "total_cycles", self.stats.total_cycles);
        stats.set("ops", ops);

        let mut energy = Json::object();
        energy.set("tc_pj", self.energy.tc_pj);
        energy.set("rf_pj", self.energy.rf_pj);
        energy.set("l1_pj", self.energy.l1_pj);
        energy.set("dram_pj", self.energy.dram_pj);
        energy.set("buffer_pj", self.energy.buffer_pj);
        energy.set("general_pj", self.energy.general_pj);

        let mut doc = Json::object();
        doc.set("schema", ENTRY_SCHEMA);
        doc.set("key", key.canonical());
        doc.set("arch", arch_token(self.arch));
        doc.set("precision", precision_token(self.workload.precision));
        doc.set("shape", shape);
        doc.set("stats", stats);
        doc.set("energy", energy);
        doc.set("latency_s", self.latency_s);
        doc.set("edp_pj_s", self.edp_pj_s);
        doc
    }

    /// Decodes an entry document, requiring its embedded key to equal
    /// `expected_key` exactly (a digest collision or a mis-filed entry
    /// must decode as "not this point", which the store turns into a
    /// miss).
    ///
    /// # Errors
    ///
    /// Returns [`PacqError::InvalidInput`] naming the first malformed
    /// field; the store treats every error here as a cache miss.
    pub fn from_json(
        doc: &Json,
        expected_key: Option<&crate::CacheKey>,
    ) -> PacqResult<CachedReport> {
        match doc.get("schema").and_then(Json::as_str) {
            Some(s) if s == ENTRY_SCHEMA => {}
            Some(s) => return Err(decode_error(format!("schema drift: `{s}`"))),
            None => return Err(decode_error("missing string field `schema`")),
        }
        let stored_key = doc
            .get("key")
            .and_then(Json::as_str)
            .ok_or_else(|| decode_error("missing string field `key`"))?;
        if let Some(expected) = expected_key {
            if stored_key != expected.canonical() {
                return Err(decode_error("entry key does not match the requested key"));
            }
        }

        let arch = doc
            .get("arch")
            .and_then(Json::as_str)
            .and_then(parse_arch_token)
            .ok_or_else(|| decode_error("missing or unknown `arch` token"))?;
        let precision = doc
            .get("precision")
            .and_then(Json::as_str)
            .and_then(parse_precision_token)
            .ok_or_else(|| decode_error("missing or unknown `precision` token"))?;

        let shape = doc
            .get("shape")
            .ok_or_else(|| decode_error("missing object field `shape`"))?;
        let (m, n, k) = (
            get_u64(shape, "m")? as usize,
            get_u64(shape, "n")? as usize,
            get_u64(shape, "k")? as usize,
        );
        let shape = GemmShape::try_new(m, n, k)
            .map_err(|_| decode_error("shape extents must be non-zero"))?;

        let stats_doc = doc
            .get("stats")
            .ok_or_else(|| decode_error("missing object field `stats`"))?;
        let rf_doc = stats_doc
            .get("rf")
            .ok_or_else(|| decode_error("missing object field `stats.rf`"))?;
        let level = |field: &str| -> PacqResult<LevelTraffic> {
            let o = stats_doc
                .get(field)
                .ok_or_else(|| decode_error(format!("missing object field `stats.{field}`")))?;
            Ok(LevelTraffic {
                reads: get_u64(o, "reads")?,
                writes: get_u64(o, "writes")?,
                read_bits: get_u64(o, "read_bits")?,
                write_bits: get_u64(o, "write_bits")?,
            })
        };
        let ops_doc = stats_doc
            .get("ops")
            .ok_or_else(|| decode_error("missing object field `stats.ops`"))?;
        let stats = GemmStats {
            rf: RfTraffic {
                a_reads: get_u64(rf_doc, "a_reads")?,
                b_reads: get_u64(rf_doc, "b_reads")?,
                c_reads: get_u64(rf_doc, "c_reads")?,
                c_writes: get_u64(rf_doc, "c_writes")?,
                a_bits: get_u64(rf_doc, "a_bits")?,
                b_bits: get_u64(rf_doc, "b_bits")?,
                c_bits: get_u64(rf_doc, "c_bits")?,
            },
            l1: level("l1")?,
            dram: level("dram")?,
            buffer_fills: get_u64(stats_doc, "buffer_fills")?,
            buffer_evictions: get_u64(stats_doc, "buffer_evictions")?,
            fetch_instructions: get_u64(stats_doc, "fetch_instructions")?,
            tc_cycles: get_u64(stats_doc, "tc_cycles")?,
            general_cycles: get_u64(stats_doc, "general_cycles")?,
            total_cycles: get_u64(stats_doc, "total_cycles")?,
            ops: GeneralCoreOps {
                unpack_ops: get_u64(ops_doc, "unpack_ops")?,
                dequant_ops: get_u64(ops_doc, "dequant_ops")?,
                inline_converts: get_u64(ops_doc, "inline_converts")?,
                offset_fixups: get_u64(ops_doc, "offset_fixups")?,
                scale_applies: get_u64(ops_doc, "scale_applies")?,
                scale_fetches: get_u64(ops_doc, "scale_fetches")?,
            },
        };

        let energy_doc = doc
            .get("energy")
            .ok_or_else(|| decode_error("missing object field `energy`"))?;
        let energy = EnergyReport {
            tc_pj: get_f64(energy_doc, "tc_pj")?,
            rf_pj: get_f64(energy_doc, "rf_pj")?,
            l1_pj: get_f64(energy_doc, "l1_pj")?,
            dram_pj: get_f64(energy_doc, "dram_pj")?,
            buffer_pj: get_f64(energy_doc, "buffer_pj")?,
            general_pj: get_f64(energy_doc, "general_pj")?,
        };

        Ok(CachedReport {
            arch,
            workload: Workload::new(shape, precision),
            stats,
            energy,
            latency_s: get_f64(doc, "latency_s")?,
            edp_pj_s: get_f64(doc, "edp_pj_s")?,
        })
    }

    /// The canonical key string embedded in a parsed entry document, for
    /// `verify`-style integrity checks.
    pub fn stored_key(doc: &Json) -> Option<&str> {
        doc.get("key").and_then(Json::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CacheKey;
    use pacq_simt::SmConfig;

    fn sample() -> (CacheKey, CachedReport) {
        let key = CacheKey::new(
            &SmConfig::volta_like(),
            GemmShape::new(16, 256, 256),
            4,
            "pacq:g128:rounded",
            "builtin",
        );
        let report = CachedReport {
            arch: Architecture::Pacq,
            workload: Workload::new(GemmShape::new(16, 256, 256), WeightPrecision::Int4),
            stats: GemmStats {
                rf: RfTraffic {
                    a_reads: 1,
                    b_reads: 2,
                    c_reads: 3,
                    c_writes: 4,
                    a_bits: 5,
                    b_bits: 1 << 60, // beyond f64's exact-integer range
                    c_bits: 7,
                },
                l1: LevelTraffic {
                    reads: 8,
                    writes: 9,
                    read_bits: 10,
                    write_bits: 11,
                },
                dram: LevelTraffic {
                    reads: 12,
                    writes: 13,
                    read_bits: u64::MAX,
                    write_bits: 15,
                },
                buffer_fills: 16,
                buffer_evictions: 17,
                fetch_instructions: 18,
                tc_cycles: 19,
                general_cycles: 20,
                total_cycles: 21,
                ops: GeneralCoreOps {
                    unpack_ops: 22,
                    dequant_ops: 23,
                    inline_converts: 24,
                    offset_fixups: 25,
                    scale_applies: 26,
                    scale_fetches: 27,
                },
            },
            energy: EnergyReport {
                tc_pj: 0.1 + 0.2, // a value with no short decimal form
                rf_pj: 2.0,
                l1_pj: 3.0,
                dram_pj: 4.0,
                buffer_pj: 5.0,
                general_pj: 6.0,
            },
            latency_s: 1.234e-6,
            edp_pj_s: 6.789e-3,
        };
        (key, report)
    }

    #[test]
    fn round_trips_bit_exactly_including_wide_u64s() {
        let (key, report) = sample();
        let text = report.to_json(&key).render();
        let doc = Json::parse(&text).unwrap();
        let back = CachedReport::from_json(&doc, Some(&key)).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.stats.rf.b_bits, 1 << 60);
        assert_eq!(back.stats.dram.read_bits, u64::MAX);
        assert_eq!(back.energy.tc_pj.to_bits(), (0.1f64 + 0.2).to_bits());
    }

    #[test]
    fn key_mismatch_is_rejected() {
        let (key, report) = sample();
        let doc = report.to_json(&key);
        let other = CacheKey::new(
            &SmConfig::volta_like(),
            GemmShape::new(32, 256, 256),
            4,
            "pacq:g128:rounded",
            "builtin",
        );
        assert!(CachedReport::from_json(&doc, Some(&other)).is_err());
        assert!(CachedReport::from_json(&doc, None).is_ok());
    }

    #[test]
    fn malformed_documents_are_typed_errors() {
        let (key, report) = sample();
        let good = report.to_json(&key);
        // Drop each top-level field in turn.
        let Json::Obj(entries) = good.clone() else {
            unreachable!()
        };
        for (field, _) in &entries {
            let stripped = Json::Obj(
                entries
                    .iter()
                    .filter(|(k, _)| k != field)
                    .cloned()
                    .collect(),
            );
            assert!(
                CachedReport::from_json(&stripped, Some(&key)).is_err(),
                "must reject entry without `{field}`"
            );
        }
        // A u64 counter stored as a bare number (lossy) is rejected.
        let mut bad = good;
        if let Some(Json::Obj(stats)) = bad.get("stats").cloned() {
            let mut stats_obj = Json::Obj(stats);
            stats_obj.set("total_cycles", Json::from(21u64));
            bad.set("stats", stats_obj);
        }
        assert!(CachedReport::from_json(&bad, Some(&key)).is_err());
    }

    #[test]
    fn tokens_round_trip() {
        for arch in [
            Architecture::StandardDequant,
            Architecture::PackedK,
            Architecture::Pacq,
            Architecture::InputStationary,
        ] {
            assert_eq!(parse_arch_token(arch_token(arch)), Some(arch));
        }
        for p in [WeightPrecision::Int4, WeightPrecision::Int2] {
            assert_eq!(parse_precision_token(precision_token(p)), Some(p));
        }
        assert_eq!(parse_arch_token("volta"), None);
    }
}
