//! # pacq-cache — the result-cache and sweep-sharding layer
//!
//! The simulator is fully deterministic: the same `(machine
//! configuration, GEMM shape, weight precision, dataflow)` tuple always
//! prices to the same report, bit for bit. This crate exploits that the
//! same way FIGLUT memoizes FP-INT products in LUTs, one level up —
//! whole reports are memoized on disk so the design-space sweeps behind
//! Figures 7–12 become lookups on re-runs:
//!
//! - [`key`] — the content address: a canonical key string over every
//!   input that can change a report (plus the crate version, so a new
//!   build never reads stale entries), hashed to a stable hex digest.
//! - [`entry`] — the on-disk entry format (`pacq-cache/v1` JSON).
//!   Every `u64` counter is serialized as a decimal string so values
//!   beyond 2^53 survive the float-based JSON model losslessly.
//! - [`store`] — the content-addressed store: atomic writes
//!   (temp file + rename), corruption-tolerant reads (a bad entry is a
//!   miss, never a panic or an error exit), and `stats`/`clear`/`verify`
//!   maintenance operations for the `pacq cache` subcommands.
//! - [`hot`] — a bounded in-memory LRU hot tier the serving layer
//!   mounts in front of the disk store (same key + digest discipline;
//!   hits are bit-identical to fresh computation).
//! - [`shard`] —`--shard i/N` grid slicing and the append-only
//!   resumable sweep checkpoint (`pacq-sweep-checkpoint/v1`).
//!
//! DESIGN.md §12 documents the key schema, invalidation rules and the
//! checkpoint format.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod entry;
pub mod hot;
pub mod key;
pub mod shard;
pub mod store;

pub use entry::{
    arch_token, parse_arch_token, parse_precision_token, precision_token, CachedReport,
    ENTRY_SCHEMA,
};
pub use hot::HotTier;
pub use key::{config_canonical, CacheKey};
pub use shard::{grid_digest, Shard, SweepCheckpoint, CHECKPOINT_SCHEMA};
pub use store::{CacheStats, ReportCache, VerifyOutcome};
