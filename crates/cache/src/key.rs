//! The content address of one cached report.
//!
//! A cache key must cover **every** input that can change the report:
//! the full machine configuration (all eleven `SmConfig` fields — the
//! energy model prices RF/L1 capacities, the timing model reads the
//! clock and the DRAM floor), the GEMM shape, the weight storage width,
//! the dataflow description (architecture × quantization group ×
//! numerics mode), the architecture identity (template digest plus
//! resolved per-level access energies — so two architecture templates
//! differing only in one access energy never share an entry), and the
//! crate version so a rebuilt simulator never
//! serves entries priced by an older model. Two keys are equal exactly
//! when their canonical strings are equal; the digest is only the
//! filename, and the stored key string is re-checked on every read, so
//! a hash collision degrades to a miss rather than a wrong answer.

use pacq_simt::{GemmShape, SmConfig};

/// A fully-resolved cache key: the canonical string plus its digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheKey {
    canonical: String,
}

impl CacheKey {
    /// Builds the key for one `(machine, shape, weight width, dataflow,
    /// architecture identity)` point. `dataflow` is the caller's stable
    /// description of everything else that shapes the report
    /// (architecture token, group geometry, numerics mode); `arch_id`
    /// is the identity of the architecture *definition* that priced it —
    /// the template digest plus the resolved per-level access energies
    /// (see `GemmRunner::arch_id`). Before `arch_id` existed, two
    /// architectures sharing every `SmConfig` field but differing in an
    /// access energy collided into one entry and served stale reports;
    /// keying the energies' bit patterns makes that structurally
    /// impossible.
    pub fn new(
        config: &SmConfig,
        shape: GemmShape,
        weight_bits: u32,
        dataflow: &str,
        arch_id: &str,
    ) -> CacheKey {
        let canonical = format!(
            "{cfg};shape={shape};wbits={weight_bits};flow={dataflow};arch={arch_id}",
            cfg = config_canonical(config),
        );
        CacheKey { canonical }
    }

    /// The canonical key string (stored inside the entry and compared on
    /// every read).
    pub fn canonical(&self) -> &str {
        &self.canonical
    }

    /// The 32-hex-character content digest used as the entry filename.
    pub fn digest(&self) -> String {
        digest_of(&self.canonical)
    }
}

/// The canonical string form of one machine configuration — every
/// `SmConfig` field, with f64 fields keyed by their exact bit patterns:
/// two configs that differ in the 17th decimal digit are different
/// machines. Shared between [`CacheKey::new`] and the sweep/dse
/// checkpoint binding so both layers spell "which machine" identically.
pub fn config_canonical(config: &SmConfig) -> String {
    format!(
        "pacq-cache/v1;ver={ver};cfg=tc{tc},dpu{dpu},dpw{dpw},dup{dup},ob{ob}x{obufs},\
         rf{rf},l1{l1},dq{dq:016x},clk{clk:016x},dram{dram:016x}",
        ver = env!("CARGO_PKG_VERSION"),
        tc = config.tensor_cores,
        dpu = config.dp_units_per_tc,
        dpw = config.dp_width,
        dup = config.adder_tree_duplication,
        ob = config.operand_buffer_bits,
        obufs = config.operand_buffers,
        rf = config.register_file_bytes,
        l1 = config.l1_bytes,
        dq = config.dequant_weights_per_cycle.to_bits(),
        clk = config.clock_hz.to_bits(),
        dram = config.dram_bytes_per_cycle.to_bits(),
    )
}

/// Digests an arbitrary string to the 32-hex-character form used for
/// entry filenames and checkpoint grid identities: two independent
/// FNV-1a passes over the bytes (different offset bases), concatenated.
pub(crate) fn digest_of(text: &str) -> String {
    format!(
        "{:016x}{:016x}",
        fnv1a(text.as_bytes(), 0xcbf2_9ce4_8422_2325),
        fnv1a(text.as_bytes(), 0x6c62_272e_07bb_0142)
    )
}

fn fnv1a(bytes: &[u8], offset_basis: u64) -> u64 {
    let mut h = offset_basis;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(mutate: impl FnOnce(&mut SmConfig)) -> CacheKey {
        let mut cfg = SmConfig::volta_like();
        mutate(&mut cfg);
        CacheKey::new(
            &cfg,
            GemmShape::new(16, 256, 256),
            4,
            "pacq:g128:rounded",
            "builtin",
        )
    }

    #[test]
    fn digest_is_stable_and_hex() {
        let a = key(|_| {});
        let b = key(|_| {});
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.digest().len(), 32);
        assert!(a.digest().chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn every_config_field_is_keyed() {
        let base = key(|_| {});
        let variants = [
            key(|c| c.tensor_cores = 7),
            key(|c| c.dp_units_per_tc = 2),
            key(|c| c.dp_width = 8),
            key(|c| c.adder_tree_duplication = 4),
            key(|c| c.operand_buffer_bits = 4096),
            key(|c| c.operand_buffers = 3),
            key(|c| c.register_file_bytes = 1),
            key(|c| c.l1_bytes = 1),
            key(|c| c.dequant_weights_per_cycle = 9.0),
            key(|c| c.clock_hz = 1.0e9),
            key(|c| c.dram_bytes_per_cycle = 8.0),
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(base, *v, "config field {i} missing from the key");
            assert_ne!(base.digest(), v.digest(), "field {i}");
        }
    }

    #[test]
    fn shape_bits_flow_and_arch_id_are_keyed() {
        let cfg = SmConfig::volta_like();
        let base = CacheKey::new(
            &cfg,
            GemmShape::new(16, 256, 256),
            4,
            "pacq:g128:rounded",
            "builtin",
        );
        let shape = CacheKey::new(
            &cfg,
            GemmShape::new(32, 256, 256),
            4,
            "pacq:g128:rounded",
            "builtin",
        );
        let bits = CacheKey::new(
            &cfg,
            GemmShape::new(16, 256, 256),
            2,
            "pacq:g128:rounded",
            "builtin",
        );
        let flow = CacheKey::new(
            &cfg,
            GemmShape::new(16, 256, 256),
            4,
            "packedk:g128:rounded",
            "builtin",
        );
        // The regression this key component exists for: identical
        // SmConfig, shape, precision and dataflow, but a different
        // architecture definition (e.g. a template that edited one
        // access energy) must be a different entry.
        let arch = CacheKey::new(
            &cfg,
            GemmShape::new(16, 256, 256),
            4,
            "pacq:g128:rounded",
            "tpl:0123456789abcdef;em=rf3fe0000000000000",
        );
        assert_ne!(base, shape);
        assert_ne!(base, bits);
        assert_ne!(base, flow);
        assert_ne!(base, arch);
        assert_ne!(base.digest(), arch.digest());
    }

    #[test]
    fn nan_and_infinity_configs_key_distinctly() {
        // INFINITY is the documented dram_bytes_per_cycle default; the
        // bit-pattern encoding must not collapse it with a finite bound.
        let inf = key(|_| {});
        let finite = key(|c| c.dram_bytes_per_cycle = 8.0);
        assert_ne!(inf.canonical(), finite.canonical());
    }
}
