//! Bounded in-memory LRU hot tier in front of the on-disk store.
//!
//! The serving tier answers the same few hundred distinct points over
//! and over (decode traffic is highly repetitive), so a small in-memory
//! map in front of the content-addressed disk store turns most lookups
//! into a lock + clone instead of a read + parse + decode. The tier
//! keeps the exact discipline of the disk store:
//!
//! - entries are addressed by [`CacheKey::digest`], and the full
//!   canonical key string is stored alongside each report and
//!   re-checked on every lookup, so a digest collision reads as a miss,
//!   never as a wrong answer;
//! - a hit hands back the same [`CachedReport`] value that was
//!   inserted, so hot-tier replies are bit-identical to disk hits and
//!   to fresh computation;
//! - eviction is strict LRU at exactly the configured capacity — the
//!   tier never holds `capacity + 1` entries, and every eviction is
//!   tallied (`cache.hot_evictions`).
//!
//! Hot-tier traffic is accounted separately from the disk counters
//! (`cache.hot_hits` / `cache.hot_misses` vs `cache.hits` /
//! `cache.misses`): a hot hit never touches the disk, so folding it
//! into the disk tallies would make the on-disk hit rate unauditable.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use crate::entry::CachedReport;
use crate::key::CacheKey;

/// Locks a mutex, ignoring poisoning: the guarded maps hold plain data
/// whose invariants are re-established on every operation, so a panic
/// in another thread (test-only by workspace lint) cannot corrupt them.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// One resident entry: the canonical key it answers for, the report,
/// and its position in the recency order.
struct HotEntry {
    canonical: String,
    report: CachedReport,
    stamp: u64,
}

/// The interior map pair, guarded by one mutex: `entries` is the
/// digest-addressed store, `recency` orders digests by last use
/// (smallest stamp = least recently used).
struct HotInner {
    entries: HashMap<String, HotEntry>,
    recency: BTreeMap<u64, String>,
    tick: u64,
}

impl HotInner {
    /// Moves `digest` to the most-recently-used position.
    fn touch(&mut self, digest: &str) {
        self.tick += 1;
        let stamp = self.tick;
        if let Some(entry) = self.entries.get_mut(digest) {
            self.recency.remove(&entry.stamp);
            entry.stamp = stamp;
            self.recency.insert(stamp, digest.to_string());
        }
    }
}

/// A bounded in-memory LRU cache of [`CachedReport`]s keyed by digest.
///
/// Thread-safe: one mutex over the maps, relaxed atomics for the
/// session tallies (same discipline as the disk store's counters).
pub struct HotTier {
    capacity: usize,
    inner: Mutex<HotInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for HotTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HotTier")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("hits", &self.hits.load(Ordering::Relaxed))
            .field("misses", &self.misses.load(Ordering::Relaxed))
            .field("evictions", &self.evictions.load(Ordering::Relaxed))
            .finish()
    }
}

impl HotTier {
    /// Creates a tier holding at most `capacity` entries. A capacity of
    /// zero is pinned up to one so a constructed tier can always hold
    /// something; callers that want *no* hot tier simply don't build
    /// one (see `ReportCache::with_hot_tier`).
    pub fn new(capacity: usize) -> HotTier {
        HotTier {
            capacity: capacity.max(1),
            inner: Mutex::new(HotInner {
                entries: HashMap::new(),
                recency: BTreeMap::new(),
                tick: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The configured capacity (≥ 1).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently resident entries (≤ capacity, always).
    pub fn len(&self) -> usize {
        lock(&self.inner).entries.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up `key`. A resident entry whose stored canonical key
    /// differs from `key.canonical()` (a digest collision) is a miss,
    /// exactly like the disk store's collision discipline.
    pub fn get(&self, key: &CacheKey) -> Option<CachedReport> {
        let digest = key.digest();
        let mut inner = lock(&self.inner);
        let found = match inner.entries.get(&digest) {
            Some(entry) if entry.canonical == key.canonical() => Some(entry.report.clone()),
            _ => None,
        };
        match &found {
            Some(_) => {
                inner.touch(&digest);
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                pacq_trace::add_counter("cache.hot_hits", 1);
            }
            None => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                pacq_trace::add_counter("cache.hot_misses", 1);
            }
        }
        found
    }

    /// Inserts (or refreshes) `report` under `key`, evicting the least
    /// recently used entry first if the tier is at capacity.
    pub fn insert(&self, key: &CacheKey, report: &CachedReport) {
        let digest = key.digest();
        let mut inner = lock(&self.inner);
        if inner.entries.contains_key(&digest) {
            // Refresh in place; no eviction needed.
            if let Some(entry) = inner.entries.get_mut(&digest) {
                entry.canonical = key.canonical().to_string();
                entry.report = report.clone();
            }
            inner.touch(&digest);
            return;
        }
        let mut evicted = 0u64;
        while inner.entries.len() >= self.capacity {
            let Some((&oldest_stamp, _)) = inner.recency.iter().next() else {
                break;
            };
            if let Some(oldest_digest) = inner.recency.remove(&oldest_stamp) {
                inner.entries.remove(&oldest_digest);
                evicted += 1;
            }
        }
        inner.tick += 1;
        let stamp = inner.tick;
        inner.recency.insert(stamp, digest.clone());
        inner.entries.insert(
            digest,
            HotEntry {
                canonical: key.canonical().to_string(),
                report: report.clone(),
                stamp,
            },
        );
        drop(inner);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            pacq_trace::add_counter("cache.hot_evictions", evicted);
        }
    }

    /// Session count of lookups answered from memory.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Session count of lookups that fell through to the next tier.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Session count of LRU evictions.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacq_fp16::WeightPrecision;
    use pacq_simt::{Architecture, EnergyReport, GemmShape, GemmStats, SmConfig, Workload};

    fn sample(m: usize) -> (CacheKey, CachedReport) {
        let shape = GemmShape::new(m, 256, 256);
        let key = CacheKey::new(
            &SmConfig::volta_like(),
            shape,
            4,
            "pacq:g128:rounded",
            "builtin",
        );
        let report = CachedReport {
            arch: Architecture::Pacq,
            workload: Workload::new(shape, WeightPrecision::Int4),
            stats: GemmStats {
                total_cycles: 42 + m as u64,
                ..GemmStats::default()
            },
            energy: EnergyReport {
                tc_pj: 1.5,
                rf_pj: 0.25,
                l1_pj: 0.125,
                dram_pj: 8.0,
                buffer_pj: 0.5,
                general_pj: 0.75,
            },
            latency_s: 1e-6 * m as f64,
            edp_pj_s: 2e-3,
        };
        (key, report)
    }

    #[test]
    fn insert_then_get_is_bit_identical_and_counted() {
        let tier = HotTier::new(4);
        let (key, report) = sample(16);
        assert!(tier.get(&key).is_none());
        tier.insert(&key, &report);
        assert_eq!(tier.get(&key).unwrap(), report);
        assert_eq!((tier.hits(), tier.misses()), (1, 1));
        assert_eq!(tier.len(), 1);
    }

    #[test]
    fn eviction_is_strict_lru_at_exact_capacity() {
        let tier = HotTier::new(2);
        let (k16, r16) = sample(16);
        let (k32, r32) = sample(32);
        let (k64, r64) = sample(64);
        tier.insert(&k16, &r16);
        tier.insert(&k32, &r32);
        assert_eq!(tier.len(), 2);
        // Touch 16 so 32 becomes the LRU victim.
        assert!(tier.get(&k16).is_some());
        tier.insert(&k64, &r64);
        assert_eq!(tier.len(), 2, "capacity must hold exactly");
        assert_eq!(tier.evictions(), 1);
        assert!(tier.get(&k32).is_none(), "LRU entry must be gone");
        assert!(tier.get(&k16).is_some());
        assert!(tier.get(&k64).is_some());
    }

    #[test]
    fn reinserting_a_resident_digest_refreshes_without_eviction() {
        let tier = HotTier::new(1);
        let (key, report) = sample(16);
        tier.insert(&key, &report);
        tier.insert(&key, &report);
        assert_eq!(tier.len(), 1);
        assert_eq!(tier.evictions(), 0);
    }

    #[test]
    fn zero_capacity_is_pinned_to_one() {
        let tier = HotTier::new(0);
        assert_eq!(tier.capacity(), 1);
        let (key, report) = sample(16);
        tier.insert(&key, &report);
        assert_eq!(tier.get(&key).unwrap(), report);
    }
}
