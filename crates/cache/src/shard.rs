//! `--shard i/N` grid slicing and the resumable sweep checkpoint.
//!
//! A sweep grid is a deterministically ordered job list; a shard is a
//! residue class over job indices. Shard `i/N` (1-based) selects job
//! `j` exactly when `j % N == i - 1`, so the `N` shards are pairwise
//! disjoint and their union is the full grid — the property the
//! cross-crate property tests pin.
//!
//! The checkpoint is an append-only line file
//! (`pacq-sweep-checkpoint/v1`): a header binding it to one grid
//! digest, then one completed job id per line. Appending a line is the
//! commit point, so a killed sweep resumes by skipping every fully
//! written id; a torn final line (the kill landed mid-write) is simply
//! ignored and that job re-runs. Pointing a checkpoint at a *different*
//! grid is a typed error, not a silent fresh start — silently dropping
//! resume state is how half-finished sweeps masquerade as complete.

use std::collections::HashSet;
use std::fs;
use std::fs::{File, OpenOptions};
use std::io::{BufRead as _, BufReader, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use pacq_error::{PacqError, PacqResult};

/// Schema header tag written as the first token of a checkpoint file.
pub const CHECKPOINT_SCHEMA: &str = "pacq-sweep-checkpoint/v1";

/// One slice of a sweep grid, parsed from `--shard i/N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// 1-based shard index, `1 ..= count`.
    pub index: usize,
    /// Total number of shards.
    pub count: usize,
}

impl Shard {
    /// The degenerate full-grid shard (`1/1`), used when `--shard` is
    /// not given.
    pub const FULL: Shard = Shard { index: 1, count: 1 };

    /// Parses `"i/N"` with `1 <= i <= N`.
    ///
    /// # Errors
    ///
    /// Returns [`PacqError::Usage`] for anything else — malformed
    /// syntax, zero values, or an index beyond the count.
    pub fn parse(text: &str) -> PacqResult<Shard> {
        let bad = || {
            PacqError::usage(format!(
                "--shard wants i/N with 1 <= i <= N (e.g. 2/4), got `{text}`"
            ))
        };
        let (i, n) = text.split_once('/').ok_or_else(bad)?;
        let is_plain_digits = |s: &str| !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit());
        if !is_plain_digits(i) || !is_plain_digits(n) {
            return Err(bad());
        }
        let index: usize = i.parse().map_err(|_| bad())?;
        let count: usize = n.parse().map_err(|_| bad())?;
        if index == 0 || count == 0 || index > count {
            return Err(bad());
        }
        Ok(Shard { index, count })
    }

    /// Whether this shard owns the job at `job_index` (0-based position
    /// in the grid's deterministic order).
    pub fn selects(&self, job_index: usize) -> bool {
        job_index % self.count == self.index - 1
    }
}

impl std::fmt::Display for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// A resumable, append-only record of completed sweep jobs.
///
/// Internally synchronized: rayon workers can call
/// [`SweepCheckpoint::mark_done`] concurrently.
#[derive(Debug)]
pub struct SweepCheckpoint {
    path: PathBuf,
    inner: Mutex<CheckpointInner>,
}

#[derive(Debug)]
struct CheckpointInner {
    file: File,
    done: HashSet<String>,
}

fn io_err(context: &'static str, path: &Path, e: std::io::Error) -> PacqError {
    PacqError::Io {
        context,
        message: format!("{}: {e}", path.display()),
    }
}

impl SweepCheckpoint {
    /// Opens (or creates) the checkpoint at `path` for the grid
    /// identified by `grid_digest`, loading the set of already-completed
    /// job ids. A truncated trailing line — the tail of a write that a
    /// kill interrupted — is tolerated and dropped.
    ///
    /// # Errors
    ///
    /// - [`PacqError::InvalidInput`] if the file exists but carries a
    ///   different schema or a different grid digest (a checkpoint is
    ///   bound to exactly one grid);
    /// - [`PacqError::Io`] if the file cannot be read or created.
    pub fn open(path: impl Into<PathBuf>, grid_digest: &str) -> PacqResult<SweepCheckpoint> {
        let path = path.into();
        let mut done = HashSet::new();
        let mut needs_header = true;
        match File::open(&path) {
            Ok(f) => {
                let mut lines = BufReader::new(f).lines();
                let header = match lines.next() {
                    Some(line) => {
                        needs_header = false;
                        line.map_err(|e| io_err("SweepCheckpoint::open", &path, e))?
                    }
                    // Zero-length file: the create was committed but the
                    // header write was not; treat as fresh and re-stamp.
                    None => format!("{CHECKPOINT_SCHEMA} {grid_digest}"),
                };
                let mut parts = header.split_whitespace();
                let (schema, digest) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
                if schema != CHECKPOINT_SCHEMA {
                    return Err(PacqError::invalid_input(
                        "SweepCheckpoint::open",
                        format!(
                            "{} is not a {CHECKPOINT_SCHEMA} file (header `{schema}`)",
                            path.display()
                        ),
                    ));
                }
                if digest != grid_digest {
                    return Err(PacqError::invalid_input(
                        "SweepCheckpoint::open",
                        format!(
                            "checkpoint {} belongs to a different run \
                             (has {digest}, this grid × machine × template × backend \
                             binding is {grid_digest}); \
                             pass a fresh --checkpoint path or delete it",
                            path.display()
                        ),
                    ));
                }
                for line in lines {
                    let line = line.map_err(|e| io_err("SweepCheckpoint::open", &path, e))?;
                    // A line is committed iff its `.` terminator made it
                    // to disk; a torn tail (kill mid-append) has no
                    // terminator and is dropped, so that job re-runs.
                    // Re-running a completed job is safe (deterministic,
                    // cached); skipping an incomplete one is not.
                    match line.strip_suffix('.') {
                        Some(id) if !id.is_empty() => {
                            done.insert(id.to_string());
                        }
                        _ => {}
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(io_err("SweepCheckpoint::open", &path, e)),
        }

        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err("SweepCheckpoint::open", &path, e))?;
        if needs_header {
            writeln!(file, "{CHECKPOINT_SCHEMA} {grid_digest}")
                .map_err(|e| io_err("SweepCheckpoint::open", &path, e))?;
        } else {
            // If the previous run died mid-append, the file ends with a
            // torn, unterminated line; close it with a bare newline so
            // the first new record does not concatenate onto it.
            let ends_with_newline = fs::read(&path)
                .map(|bytes| bytes.last() == Some(&b'\n'))
                .unwrap_or(true);
            if !ends_with_newline {
                writeln!(file).map_err(|e| io_err("SweepCheckpoint::open", &path, e))?;
            }
        }
        Ok(SweepCheckpoint {
            path,
            inner: Mutex::new(CheckpointInner { file, done }),
        })
    }

    /// The checkpoint file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether `job_id` was already completed by a previous run.
    pub fn is_done(&self, job_id: &str) -> bool {
        match self.inner.lock() {
            Ok(inner) => inner.done.contains(job_id),
            // A poisoned lock means a sibling worker panicked mid-check;
            // claim "not done" and let determinism absorb the re-run.
            Err(_) => false,
        }
    }

    /// Number of jobs recorded as completed.
    pub fn done_count(&self) -> usize {
        match self.inner.lock() {
            Ok(inner) => inner.done.len(),
            Err(_) => 0,
        }
    }

    /// Records `job_id` as completed, durably (append + flush). The
    /// trailing `.` terminator is what distinguishes a fully written
    /// line from one torn by a kill.
    ///
    /// # Errors
    ///
    /// Returns [`PacqError::Io`] if the append fails or the internal
    /// lock is poisoned.
    pub fn mark_done(&self, job_id: &str) -> PacqResult<()> {
        let mut inner = self.inner.lock().map_err(|_| PacqError::Io {
            context: "SweepCheckpoint::mark_done",
            message: "checkpoint lock poisoned by a panicking worker".to_string(),
        })?;
        writeln!(inner.file, "{job_id}.")
            .and_then(|()| inner.file.flush())
            .map_err(|e| io_err("SweepCheckpoint::mark_done", &self.path, e))?;
        inner.done.insert(job_id.to_string());
        Ok(())
    }
}

/// Digests an arbitrary grid description to the same 32-hex form used
/// for cache entry filenames; sweeps use this to bind checkpoints to
/// one grid.
pub fn grid_digest(description: &str) -> String {
    crate::key::digest_of(description)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_parsing_accepts_only_well_formed_slices() {
        assert_eq!(Shard::parse("1/1").unwrap(), Shard::FULL);
        assert_eq!(Shard::parse("2/4").unwrap(), Shard { index: 2, count: 4 });
        for bad in [
            "", "2", "/", "0/4", "5/4", "0/0", "a/4", "2/b", "+1/4", " 1/4", "1/ 4", "1//4",
        ] {
            assert!(Shard::parse(bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn shards_partition_the_grid() {
        let n = 5;
        let shards: Vec<Shard> = (1..=n).map(|i| Shard { index: i, count: n }).collect();
        for job in 0..137 {
            let owners = shards.iter().filter(|s| s.selects(job)).count();
            assert_eq!(owners, 1, "job {job} must belong to exactly one shard");
        }
        assert!((0..137).all(|j| Shard::FULL.selects(j)));
    }

    fn tmpfile(tag: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!(
            "pacq-checkpoint-test-{tag}-{}.ckpt",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn checkpoint_resumes_and_survives_a_torn_tail() {
        let path = tmpfile("resume");
        let digest = grid_digest("grid-a");
        {
            let ckpt = SweepCheckpoint::open(&path, &digest).unwrap();
            ckpt.mark_done("job-1").unwrap();
            ckpt.mark_done("job-2").unwrap();
            assert!(ckpt.is_done("job-1"));
            assert_eq!(ckpt.done_count(), 2);
        }
        // Simulate a kill mid-append: a torn line with no terminator.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "job-3").unwrap();
        }
        let ckpt = SweepCheckpoint::open(&path, &digest).unwrap();
        assert!(ckpt.is_done("job-1") && ckpt.is_done("job-2"));
        assert!(!ckpt.is_done("job-3"), "torn line must re-run");
        // Completing it again after resume works.
        ckpt.mark_done("job-3").unwrap();
        drop(ckpt);
        let ckpt = SweepCheckpoint::open(&path, &digest).unwrap();
        assert!(ckpt.is_done("job-3"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_for_a_different_grid_is_a_typed_error() {
        let path = tmpfile("mismatch");
        let ckpt = SweepCheckpoint::open(&path, &grid_digest("grid-a")).unwrap();
        drop(ckpt);
        let err = SweepCheckpoint::open(&path, &grid_digest("grid-b")).unwrap_err();
        assert!(err.to_string().contains("belongs to a different run"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn foreign_file_is_rejected_not_overwritten() {
        let path = tmpfile("foreign");
        std::fs::write(&path, "important notes\n").unwrap();
        let err = SweepCheckpoint::open(&path, &grid_digest("grid-a")).unwrap_err();
        assert!(err.to_string().contains(CHECKPOINT_SCHEMA));
        // The file must be untouched.
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "important notes\n");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn concurrent_marks_are_all_recorded() {
        let path = tmpfile("concurrent");
        let digest = grid_digest("grid-c");
        let ckpt = SweepCheckpoint::open(&path, &digest).unwrap();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let ckpt = &ckpt;
                scope.spawn(move || {
                    for j in 0..25 {
                        ckpt.mark_done(&format!("job-{t}-{j}")).unwrap();
                    }
                });
            }
        });
        drop(ckpt);
        let ckpt = SweepCheckpoint::open(&path, &digest).unwrap();
        // The final line has a terminator, so all 100 must load.
        assert_eq!(ckpt.done_count(), 100);
        let _ = std::fs::remove_file(&path);
    }
}
