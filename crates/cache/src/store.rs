//! The content-addressed on-disk report store.
//!
//! Layout: one directory, one file per entry, named `<digest>.json`
//! where the digest is [`CacheKey::digest`]. Writes are atomic (temp
//! file in the same directory, then rename) so a killed sweep never
//! leaves a half-written entry under its final name. Reads are
//! corruption-tolerant by construction: *any* failure — missing file,
//! unreadable bytes, malformed JSON, schema drift, a digest collision —
//! degrades to a cache miss and the caller recomputes. A cache must
//! never turn a recoverable storage problem into a wrong answer or an
//! error exit.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use pacq_error::{PacqError, PacqResult};
use pacq_trace::Json;

use crate::entry::CachedReport;
use crate::hot::HotTier;
use crate::key::{digest_of, CacheKey};

/// Extension used for committed entries.
const ENTRY_EXT: &str = "json";

/// A content-addressed report cache rooted at one directory.
///
/// Hit/miss/put-error counters are per-open-handle (session) tallies,
/// kept with relaxed atomics so a cache shared across rayon workers
/// counts without locking.
pub struct ReportCache {
    dir: PathBuf,
    hot: Option<HotTier>,
    hits: AtomicU64,
    misses: AtomicU64,
    put_errors: AtomicU64,
}

impl fmt::Debug for ReportCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReportCache")
            .field("dir", &self.dir)
            .field("hot", &self.hot)
            .field("hits", &self.hits.load(Ordering::Relaxed))
            .field("misses", &self.misses.load(Ordering::Relaxed))
            .field("put_errors", &self.put_errors.load(Ordering::Relaxed))
            .finish()
    }
}

/// Aggregate statistics over the entries currently on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Number of well-formed entries.
    pub entries: usize,
    /// Total bytes across all entry files (including corrupt ones).
    pub bytes: u64,
    /// Number of entry files that failed to decode or are mis-filed.
    pub corrupt: usize,
}

/// The result of a full integrity walk ([`ReportCache::verify`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VerifyOutcome {
    /// Entries that decoded cleanly and live under their own digest.
    pub valid: usize,
    /// File names (not full paths) of entries that failed verification.
    pub corrupt: Vec<String>,
}

impl ReportCache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Returns [`PacqError::Io`] if the directory cannot be created —
    /// the only cache operation that refuses to degrade, because a
    /// `--cache` flag pointing at an uncreatable path is a user error
    /// worth surfacing immediately.
    pub fn open(dir: impl Into<PathBuf>) -> PacqResult<ReportCache> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| PacqError::Io {
            context: "ReportCache::open",
            message: format!("cannot create cache directory {}: {e}", dir.display()),
        })?;
        Ok(ReportCache {
            dir,
            hot: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            put_errors: AtomicU64::new(0),
        })
    }

    /// Adds a bounded in-memory LRU hot tier of `capacity` entries in
    /// front of the disk store (see [`HotTier`]). A capacity of zero
    /// disables the tier entirely — every lookup goes to disk, which is
    /// the default and keeps the on-disk hit/miss tallies authoritative
    /// for callers that audit them.
    #[must_use]
    pub fn with_hot_tier(mut self, capacity: usize) -> Self {
        self.hot = (capacity > 0).then(|| HotTier::new(capacity));
        self
    }

    /// The hot tier, when one was configured via
    /// [`ReportCache::with_hot_tier`].
    pub fn hot_tier(&self) -> Option<&HotTier> {
        self.hot.as_ref()
    }

    /// The cache root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, digest: &str) -> PathBuf {
        self.dir.join(format!("{digest}.{ENTRY_EXT}"))
    }

    /// Looks up the report for `key`. Every failure mode — absent,
    /// truncated, corrupted, schema-drifted or collided entry — returns
    /// `None` (a miss); this method cannot error.
    ///
    /// With a hot tier configured, memory is consulted first: a hot hit
    /// skips the disk entirely (tallied as `cache.hot_hits`, not
    /// `cache.hits`), a hot miss falls through to the disk path, and a
    /// disk hit is promoted into the tier on the way out. A corrupt
    /// disk entry behind a hot miss is still just a miss — the caller
    /// recomputes, and the subsequent `put` heals both tiers.
    pub fn get(&self, key: &CacheKey) -> Option<CachedReport> {
        if let Some(hot) = &self.hot {
            if let Some(report) = hot.get(key) {
                return Some(report);
            }
        }
        let found = fs::read_to_string(self.entry_path(&key.digest()))
            .ok()
            .and_then(|text| Json::parse(&text).ok())
            .and_then(|doc| CachedReport::from_json(&doc, Some(key)).ok());
        match &found {
            Some(report) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                pacq_trace::add_counter("cache.hits", 1);
                if let Some(hot) = &self.hot {
                    hot.insert(key, report);
                }
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                pacq_trace::add_counter("cache.misses", 1);
            }
        }
        found
    }

    /// Stores `report` under `key`, atomically: the entry is written to
    /// a temp file in the cache directory and renamed into place, so
    /// concurrent readers see either the old entry or the complete new
    /// one, never a torn write.
    ///
    /// # Errors
    ///
    /// Returns [`PacqError::Io`] on filesystem failure. Callers on the
    /// hot path should treat this as a degradation (count it, keep the
    /// freshly computed report) rather than an exit — see
    /// [`ReportCache::put_degraded`].
    pub fn put(&self, key: &CacheKey, report: &CachedReport) -> PacqResult<()> {
        // Write-through into the hot tier first: the freshly computed
        // report is correct regardless of whether the disk accepts it,
        // so a read-only store still gets in-memory hits.
        if let Some(hot) = &self.hot {
            hot.insert(key, report);
        }
        let digest = key.digest();
        let final_path = self.entry_path(&digest);
        // Unique temp name per writer so parallel workers computing the
        // same point don't clobber each other's in-flight files; both
        // renames commit an identical entry, so either winning is fine.
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp_path = self.dir.join(format!(
            ".{digest}.{}.{}.tmp",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let text = report.to_json(key).render();
        let write = |path: &Path| -> std::io::Result<()> {
            let mut f = fs::File::create(path)?;
            f.write_all(text.as_bytes())?;
            f.sync_all()?;
            Ok(())
        };
        write(&tmp_path)
            .and_then(|()| fs::rename(&tmp_path, &final_path))
            .map_err(|e| {
                let _ = fs::remove_file(&tmp_path);
                PacqError::Io {
                    context: "ReportCache::put",
                    message: format!("cannot write entry {}: {e}", final_path.display()),
                }
            })
    }

    /// [`ReportCache::put`] for the hot path: failures are tallied (and
    /// surfaced through the `cache.put_errors` trace counter) but never
    /// propagated — a read-only or full cache directory degrades a
    /// sweep to uncached speed instead of failing it.
    pub fn put_degraded(&self, key: &CacheKey, report: &CachedReport) {
        if self.put(key, report).is_err() {
            self.put_errors.fetch_add(1, Ordering::Relaxed);
            pacq_trace::add_counter("cache.put_errors", 1);
        }
    }

    /// Session hit count (lookups served from disk since open).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Session miss count.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Session count of swallowed store failures.
    pub fn put_errors(&self) -> u64 {
        self.put_errors.load(Ordering::Relaxed)
    }

    /// Session count of lookups answered from the hot tier (0 when no
    /// tier is configured).
    pub fn hot_hits(&self) -> u64 {
        self.hot.as_ref().map_or(0, HotTier::hits)
    }

    /// Session count of hot-tier lookups that fell through to disk.
    pub fn hot_misses(&self) -> u64 {
        self.hot.as_ref().map_or(0, HotTier::misses)
    }

    /// Session count of hot-tier LRU evictions.
    pub fn hot_evictions(&self) -> u64 {
        self.hot.as_ref().map_or(0, HotTier::evictions)
    }

    fn entry_files(&self) -> PacqResult<Vec<PathBuf>> {
        let read = fs::read_dir(&self.dir).map_err(|e| PacqError::Io {
            context: "ReportCache::entry_files",
            message: format!("cannot read cache directory {}: {e}", self.dir.display()),
        })?;
        let mut files = Vec::new();
        for dirent in read {
            let dirent = dirent.map_err(|e| PacqError::Io {
                context: "ReportCache::entry_files",
                message: format!("cannot enumerate {}: {e}", self.dir.display()),
            })?;
            let path = dirent.path();
            let is_entry = path.extension().and_then(|e| e.to_str()) == Some(ENTRY_EXT)
                && path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| !n.starts_with('.'));
            if is_entry {
                files.push(path);
            }
        }
        files.sort();
        Ok(files)
    }

    /// Walks the store and reports entry/byte/corrupt counts (for
    /// `pacq cache stats`).
    ///
    /// # Errors
    ///
    /// Returns [`PacqError::Io`] if the directory itself is unreadable.
    pub fn stats(&self) -> PacqResult<CacheStats> {
        let mut out = CacheStats::default();
        for path in self.entry_files()? {
            if let Ok(meta) = fs::metadata(&path) {
                out.bytes += meta.len();
            }
            if Self::check_entry(&path).is_ok() {
                out.entries += 1;
            } else {
                out.corrupt += 1;
            }
        }
        Ok(out)
    }

    /// Deletes every entry (for `pacq cache clear`), returning how many
    /// files were removed.
    ///
    /// # Errors
    ///
    /// Returns [`PacqError::Io`] if the directory is unreadable or an
    /// entry cannot be removed.
    pub fn clear(&self) -> PacqResult<usize> {
        let files = self.entry_files()?;
        let removed = files.len();
        for path in files {
            fs::remove_file(&path).map_err(|e| PacqError::Io {
                context: "ReportCache::clear",
                message: format!("cannot remove {}: {e}", path.display()),
            })?;
        }
        Ok(removed)
    }

    /// Fully decodes one entry file and checks it is filed under the
    /// digest of its own stored key.
    fn check_entry(path: &Path) -> PacqResult<()> {
        let text = fs::read_to_string(path).map_err(|e| PacqError::Io {
            context: "ReportCache::verify",
            message: format!("cannot read {}: {e}", path.display()),
        })?;
        let doc = Json::parse(&text)?;
        let report_key = CachedReport::stored_key(&doc).ok_or_else(|| {
            PacqError::invalid_input("ReportCache::verify", "entry has no stored key")
        })?;
        let expected_name = format!("{}.{ENTRY_EXT}", digest_of(report_key));
        let actual_name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if actual_name != expected_name {
            return Err(PacqError::invalid_input(
                "ReportCache::verify",
                format!("entry {actual_name} is filed under the wrong digest"),
            ));
        }
        CachedReport::from_json(&doc, None).map(|_| ())
    }

    /// Integrity-walks every entry (for `pacq cache verify`): each file
    /// must parse, decode, and live under the digest of its own stored
    /// key.
    ///
    /// # Errors
    ///
    /// Returns [`PacqError::Io`] if the directory itself is unreadable;
    /// per-entry failures are reported in the outcome, not as errors.
    pub fn verify(&self) -> PacqResult<VerifyOutcome> {
        let mut out = VerifyOutcome::default();
        for path in self.entry_files()? {
            if Self::check_entry(&path).is_ok() {
                out.valid += 1;
            } else {
                let name = path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .unwrap_or("<non-utf8>")
                    .to_string();
                out.corrupt.push(name);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacq_fp16::WeightPrecision;
    use pacq_simt::{Architecture, EnergyReport, GemmShape, GemmStats, SmConfig, Workload};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pacq-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample(m: usize) -> (CacheKey, CachedReport) {
        let shape = GemmShape::new(m, 256, 256);
        let key = CacheKey::new(
            &SmConfig::volta_like(),
            shape,
            4,
            "pacq:g128:rounded",
            "builtin",
        );
        let report = CachedReport {
            arch: Architecture::Pacq,
            workload: Workload::new(shape, WeightPrecision::Int4),
            stats: GemmStats {
                total_cycles: 42 + m as u64,
                ..GemmStats::default()
            },
            energy: EnergyReport {
                tc_pj: 1.5,
                rf_pj: 0.25,
                l1_pj: 0.125,
                dram_pj: 8.0,
                buffer_pj: 0.5,
                general_pj: 0.75,
            },
            latency_s: 1e-6 * m as f64,
            edp_pj_s: 2e-3,
        };
        (key, report)
    }

    #[test]
    fn put_then_get_round_trips_and_counts() {
        let dir = tmpdir("roundtrip");
        let cache = ReportCache::open(&dir).unwrap();
        let (key, report) = sample(16);
        assert!(cache.get(&key).is_none());
        cache.put(&key, &report).unwrap();
        assert_eq!(cache.get(&key).unwrap(), report);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_and_garbage_entries_are_misses_not_errors() {
        let dir = tmpdir("corrupt");
        let cache = ReportCache::open(&dir).unwrap();
        let (key, report) = sample(16);
        cache.put(&key, &report).unwrap();

        let path = cache.entry_path(&key.digest());
        let full = fs::read_to_string(&path).unwrap();
        // Truncate to half.
        fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(cache.get(&key).is_none());
        // Replace with non-JSON garbage.
        fs::write(&path, b"\x00\xff not json").unwrap();
        assert!(cache.get(&key).is_none());
        // Valid JSON, wrong schema.
        fs::write(&path, "{\"schema\": \"other/v9\"}\n").unwrap();
        assert!(cache.get(&key).is_none());
        // Recovery: a fresh put heals the slot.
        cache.put(&key, &report).unwrap();
        assert_eq!(cache.get(&key).unwrap(), report);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn entry_for_a_different_key_under_our_digest_is_a_miss() {
        let dir = tmpdir("collide");
        let cache = ReportCache::open(&dir).unwrap();
        let (key_a, report_a) = sample(16);
        let (key_b, _) = sample(32);
        cache.put(&key_a, &report_a).unwrap();
        // Simulate a digest collision: file A's entry under B's digest.
        fs::copy(
            cache.entry_path(&key_a.digest()),
            cache.entry_path(&key_b.digest()),
        )
        .unwrap();
        assert!(cache.get(&key_b).is_none(), "collision must read as miss");
        assert_eq!(cache.get(&key_a).unwrap(), report_a);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_clear_and_verify_agree() {
        let dir = tmpdir("maint");
        let cache = ReportCache::open(&dir).unwrap();
        for m in [16, 32, 64] {
            let (key, report) = sample(m);
            cache.put(&key, &report).unwrap();
        }
        // One corrupt file and one mis-filed entry.
        fs::write(dir.join("deadbeefdeadbeefdeadbeefdeadbeef.json"), "{").unwrap();
        let (key_a, _) = sample(16);
        let (key_b, _) = sample(32);
        fs::copy(
            cache.entry_path(&key_a.digest()),
            dir.join(format!("{}x.json", &key_b.digest()[..31])),
        )
        .unwrap();

        let stats = cache.stats().unwrap();
        assert_eq!((stats.entries, stats.corrupt), (3, 2));
        assert!(stats.bytes > 0);

        let verify = cache.verify().unwrap();
        assert_eq!(verify.valid, 3);
        assert_eq!(verify.corrupt.len(), 2);

        assert_eq!(cache.clear().unwrap(), 5);
        assert_eq!(cache.stats().unwrap(), CacheStats::default());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn hot_tier_intercepts_repeat_lookups_and_heals_from_memory() {
        let dir = tmpdir("hot");
        let cache = ReportCache::open(&dir).unwrap().with_hot_tier(8);
        let (key, report) = sample(16);
        assert!(cache.get(&key).is_none());
        cache.put(&key, &report).unwrap();
        // put wrote through, so the first lookup is already a hot hit
        // and the disk tallies stay untouched.
        assert_eq!(cache.get(&key).unwrap(), report);
        assert_eq!(cache.get(&key).unwrap(), report);
        assert_eq!(cache.hot_hits(), 2);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        // Deleting the disk entry doesn't matter while hot: replies
        // still come back bit-identical from memory.
        fs::remove_file(cache.entry_path(&key.digest())).unwrap();
        assert_eq!(cache.get(&key).unwrap(), report);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_hits_are_promoted_into_the_hot_tier() {
        let dir = tmpdir("promote");
        let seed = ReportCache::open(&dir).unwrap();
        let (key, report) = sample(32);
        seed.put(&key, &report).unwrap();
        // Fresh handle with an empty hot tier: first lookup goes to
        // disk, second is served from memory.
        let cache = ReportCache::open(&dir).unwrap().with_hot_tier(8);
        assert_eq!(cache.get(&key).unwrap(), report);
        assert_eq!(
            (cache.hits(), cache.hot_hits(), cache.hot_misses()),
            (1, 0, 1)
        );
        assert_eq!(cache.get(&key).unwrap(), report);
        assert_eq!((cache.hits(), cache.hot_hits()), (1, 1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_hot_capacity_disables_the_tier() {
        let dir = tmpdir("nohot");
        let cache = ReportCache::open(&dir).unwrap().with_hot_tier(0);
        assert!(cache.hot_tier().is_none());
        let (key, report) = sample(16);
        cache.put(&key, &report).unwrap();
        assert_eq!(cache.get(&key).unwrap(), report);
        assert_eq!((cache.hits(), cache.hot_hits()), (1, 0));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn put_degraded_swallows_filesystem_failure() {
        let dir = tmpdir("degraded");
        let cache = ReportCache::open(&dir).unwrap();
        // Make the directory vanish out from under the cache.
        fs::remove_dir_all(&dir).unwrap();
        let (key, report) = sample(16);
        cache.put_degraded(&key, &report);
        assert_eq!(cache.put_errors(), 1);
    }
}
