//! Activity-calibrated energy: a per-gate-class bill of materials that
//! prices toggle histograms (measured by `pacq-rtl` netlist simulation)
//! into pJ figures.
//!
//! The analytic model in [`crate::units`] carries calibrated per-unit
//! constants; this module closes the loop from the other side. A
//! netlist simulation counts toggles per gate class, and the BOM maps
//! each class through its NAND2-equivalent cell area and a single
//! technology constant ([`PJ_PER_TOGGLE_GE`]) into energy — dynamic
//! switching energy is `α·C·V²·f`, and cell capacitance tracks cell
//! area, so class area is the right weight.
//!
//! The BOM is keyed by *string* class names so this crate stays
//! independent of `pacq-rtl` (which depends on us); the names match
//! `pacq_rtl::GATE_CLASSES` and the pairing is pinned by cross-crate
//! tests.

use pacq_error::{PacqError, PacqResult};

/// The gate classes the BOM prices, with NAND2-equivalent (GE) cell
/// areas. Mirrors the per-gate areas of the `pacq-rtl` netlist model:
/// an inverter is half a NAND2, two-input AND/OR are one, XOR ≈ 2.5,
/// and a 2:1 mux ≈ 2 (standard-cell relative areas).
pub const GATE_CLASS_AREAS_GE: [(&str, f64); 5] = [
    ("not", 0.5),
    ("and", 1.0),
    ("or", 1.0),
    ("xor", 2.5),
    ("mux", 2.0),
];

/// Switching energy per toggle of one gate-equivalent of cell area, in
/// pJ, at the paper's 32 nm / 400 MHz operating point.
///
/// Pinned so the baseline FP16 multiplier netlist, driven by the
/// reference stimulus (2048 ops of the INT4-representative stream,
/// seed `0x5EED`, ≈ 345.6 GE-weighted toggles/op), prices to the
/// analytic `GemmUnit::BaselineFp16Mul` figure of ≈ 0.9 pJ/op — one
/// anchoring constant, after which every other unit/precision
/// combination is a genuine prediction the `pacq audit --activity`
/// pass cross-checks.
pub const PJ_PER_TOGGLE_GE: f64 = 2.6e-3;

/// A per-gate-class energy bill of materials: pJ per toggle for each
/// priced class.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityBom {
    entries: Vec<(String, f64)>,
}

impl ActivityBom {
    /// The calibrated BOM: every class of [`GATE_CLASS_AREAS_GE`]
    /// priced at `area_ge × PJ_PER_TOGGLE_GE`.
    pub fn calibrated() -> Self {
        ActivityBom {
            entries: GATE_CLASS_AREAS_GE
                .iter()
                .map(|&(class, area)| (class.to_string(), area * PJ_PER_TOGGLE_GE))
                .collect(),
        }
    }

    /// Returns the BOM with every per-toggle energy multiplied by
    /// `scale` — the perturbation knob CI uses to smoke the audit
    /// mismatch path.
    ///
    /// # Errors
    ///
    /// Returns a typed [`PacqError`] unless `scale` is finite and
    /// positive.
    pub fn with_scale(mut self, scale: f64) -> PacqResult<Self> {
        if !scale.is_finite() || scale <= 0.0 {
            return Err(PacqError::invalid_input(
                "energy::activity",
                format!("BOM scale must be finite and positive (got {scale})"),
            ));
        }
        for (_, pj) in &mut self.entries {
            *pj *= scale;
        }
        Ok(self)
    }

    /// Returns the BOM with `class` removed — fault-injection helper
    /// for exercising the missing-class error path.
    pub fn without_class(mut self, class: &str) -> Self {
        self.entries.retain(|(c, _)| c != class);
        self
    }

    /// Energy per toggle for one gate class, in pJ.
    ///
    /// # Errors
    ///
    /// Returns a typed [`PacqError`] when the class is not priced by
    /// this BOM.
    pub fn energy_per_toggle_pj(&self, class: &str) -> PacqResult<f64> {
        self.entries
            .iter()
            .find(|(c, _)| c == class)
            .map(|&(_, pj)| pj)
            .ok_or_else(|| {
                PacqError::invalid_input(
                    "energy::activity",
                    format!("gate class `{class}` missing from activity BOM"),
                )
            })
    }

    /// Prices a toggle histogram: `Σ toggles(class) × pJ/toggle(class)`.
    ///
    /// # Errors
    ///
    /// Returns a typed [`PacqError`] when any histogram class is not
    /// priced by this BOM.
    pub fn price_pj(&self, histogram: &[(&str, u64)]) -> PacqResult<f64> {
        let mut total = 0.0;
        for &(class, toggles) in histogram {
            total += toggles as f64 * self.energy_per_toggle_pj(class)?;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_bom_prices_every_class() {
        let bom = ActivityBom::calibrated();
        for (class, area) in GATE_CLASS_AREAS_GE {
            let pj = bom.energy_per_toggle_pj(class).unwrap();
            assert!((pj - area * PJ_PER_TOGGLE_GE).abs() < 1e-18);
        }
    }

    #[test]
    fn missing_class_is_a_typed_error() {
        let bom = ActivityBom::calibrated().without_class("xor");
        let e = bom.energy_per_toggle_pj("xor").unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("gate class `xor` missing"), "{msg}");
        assert!(!msg.contains('\n'), "one-line invariant: {msg}");
        let e = bom.price_pj(&[("and", 3), ("xor", 1)]).unwrap_err();
        assert!(e.to_string().contains("xor"), "{e}");
    }

    #[test]
    fn pricing_is_linear_in_toggles_and_scale() {
        let bom = ActivityBom::calibrated();
        let hist = [
            ("not", 10u64),
            ("and", 20),
            ("or", 5),
            ("xor", 7),
            ("mux", 2),
        ];
        let once = bom.price_pj(&hist).unwrap();
        let doubled: Vec<(&str, u64)> = hist.iter().map(|&(c, t)| (c, 2 * t)).collect();
        assert!((bom.price_pj(&doubled).unwrap() - 2.0 * once).abs() < 1e-12);
        let scaled = ActivityBom::calibrated().with_scale(3.0).unwrap();
        assert!((scaled.price_pj(&hist).unwrap() - 3.0 * once).abs() < 1e-12);
    }

    #[test]
    fn bad_scales_are_typed_errors() {
        for scale in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let e = ActivityBom::calibrated().with_scale(scale).unwrap_err();
            assert!(e.to_string().contains("scale"), "{e}");
        }
    }

    #[test]
    fn empty_histogram_prices_to_zero() {
        assert_eq!(ActivityBom::calibrated().price_pj(&[]).unwrap(), 0.0);
    }
}
