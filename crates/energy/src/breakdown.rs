//! Power breakdowns — the data behind Figure 9.
//!
//! For every unit the breakdown reports the fraction of fully-active power
//! contributed by each (component, provenance) group, and in particular
//! the total **reused fraction** (purple in the paper's pie charts).

use crate::components::{Component, Provenance};
use crate::units::GemmUnit;

/// One slice of a unit's power pie.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakdownSlice {
    /// The component class.
    pub component: Component,
    /// Reused-from-baseline or newly added.
    pub provenance: Provenance,
    /// Number of instances in this slice.
    pub count: u32,
    /// Power of the slice in normalized units.
    pub power_units: f64,
    /// Fraction of the unit's total power.
    pub fraction: f64,
}

/// A unit's full power breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerBreakdown {
    unit: GemmUnit,
    slices: Vec<BreakdownSlice>,
    total_units: f64,
}

impl PowerBreakdown {
    /// Computes the breakdown of a unit.
    ///
    /// # Examples
    ///
    /// ```
    /// use pacq_energy::{GemmUnit, PowerBreakdown};
    ///
    /// let b = PowerBreakdown::of(GemmUnit::ParallelFpIntMul);
    /// // Figure 9: ~73 % of the parallel FP-INT-16 MUL power is reused.
    /// assert!((b.reused_fraction() - 0.73).abs() < 0.01);
    /// ```
    pub fn of(unit: GemmUnit) -> Self {
        let bom = unit.bom();
        let total_units: f64 = bom.iter().map(|e| e.energy_units()).sum();
        let mut slices: Vec<BreakdownSlice> = bom
            .iter()
            .map(|e| BreakdownSlice {
                component: e.component,
                provenance: e.provenance,
                count: e.count,
                power_units: e.energy_units(),
                fraction: e.energy_units() / total_units,
            })
            .collect();
        // Merge duplicate (component, provenance) pairs for a clean pie.
        slices.sort_by_key(|s| (s.component as u8 as u32, s.provenance as u8 as u32));
        let mut merged: Vec<BreakdownSlice> = Vec::new();
        for s in slices {
            match merged.last_mut() {
                Some(last) if last.component == s.component && last.provenance == s.provenance => {
                    last.count += s.count;
                    last.power_units += s.power_units;
                    last.fraction += s.fraction;
                }
                _ => merged.push(s),
            }
        }
        PowerBreakdown {
            unit,
            slices: merged,
            total_units,
        }
    }

    /// The unit this breakdown describes.
    pub fn unit(&self) -> GemmUnit {
        self.unit
    }

    /// The slices, one per (component, provenance) group.
    pub fn slices(&self) -> &[BreakdownSlice] {
        &self.slices
    }

    /// Total power in normalized units.
    pub fn total_units(&self) -> f64 {
        self.total_units
    }

    /// The purple fraction of Figure 9: power in reused components.
    pub fn reused_fraction(&self) -> f64 {
        self.slices
            .iter()
            .filter(|s| s.provenance == Provenance::Reused)
            .map(|s| s.fraction)
            .sum()
    }

    /// The white fraction of Figure 9: power in newly added components.
    pub fn new_fraction(&self) -> f64 {
        1.0 - self.reused_fraction()
    }
}

/// Figure 9's three pies plus the average reuse the paper quotes (69 %).
#[derive(Debug, Clone, PartialEq)]
pub struct Figure9 {
    /// "Parallel INT-11 MUL" pie.
    pub parallel_int11: PowerBreakdown,
    /// "Parallel FP-INT-16 MUL" pie.
    pub parallel_fp_int: PowerBreakdown,
    /// "Parallel FP-INT-16 DP-4" pie.
    pub parallel_dp4: PowerBreakdown,
}

impl Figure9 {
    /// Computes all three breakdowns.
    pub fn compute() -> Self {
        Figure9 {
            parallel_int11: PowerBreakdown::of(GemmUnit::ParallelInt11Mul),
            parallel_fp_int: PowerBreakdown::of(GemmUnit::ParallelFpIntMul),
            parallel_dp4: PowerBreakdown::of(GemmUnit::PARALLEL_DP4),
        }
    }

    /// Average reuse ratio across the three units (paper: 69 %).
    pub fn average_reuse(&self) -> f64 {
        (self.parallel_int11.reused_fraction()
            + self.parallel_fp_int.reused_fraction()
            + self.parallel_dp4.reused_fraction())
            / 3.0
    }
}

impl Default for Figure9 {
    fn default() -> Self {
        Self::compute()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        for unit in [
            GemmUnit::BaselineFp16Mul,
            GemmUnit::ParallelInt11Mul,
            GemmUnit::ParallelFpIntMul,
            GemmUnit::PARALLEL_DP4,
            GemmUnit::PacqTensorCore,
        ] {
            let b = PowerBreakdown::of(unit);
            let sum: f64 = b.slices().iter().map(|s| s.fraction).sum();
            assert!((sum - 1.0).abs() < 1e-9, "{unit:?}: fractions sum to {sum}");
            assert!((b.reused_fraction() + b.new_fraction() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn figure9_reuse_ratios_match_paper() {
        let f = Figure9::compute();
        // "we successfully reuse nearly 75% of the original INT-11
        // multiplier resources"
        let r1 = f.parallel_int11.reused_fraction();
        assert!((r1 - 0.75).abs() < 0.01, "parallel INT11 reuse = {r1}");
        // "reusing ~73% of hardware resources from standard FP16
        // multipliers"
        let r2 = f.parallel_fp_int.reused_fraction();
        assert!((r2 - 0.73).abs() < 0.01, "parallel FP-INT reuse = {r2}");
        // "For the DP-4 unit, we achieve approximately 60% hardware
        // resource reuse."
        let r3 = f.parallel_dp4.reused_fraction();
        assert!((0.54..0.63).contains(&r3), "parallel DP-4 reuse = {r3}");
        // "our design maintains an average hardware resource reuse ratio
        // of 69%"
        let avg = f.average_reuse();
        assert!((avg - 0.69).abs() < 0.02, "average reuse = {avg}");
    }

    #[test]
    fn baseline_units_are_fully_reused() {
        let b = PowerBreakdown::of(GemmUnit::BaselineFp16Mul);
        assert!((b.reused_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn merged_slices_have_no_duplicates() {
        let b = PowerBreakdown::of(GemmUnit::PARALLEL_DP4);
        let mut seen = std::collections::HashSet::new();
        for s in b.slices() {
            assert!(
                seen.insert((
                    format!("{}", s.component),
                    s.provenance == Provenance::Reused
                )),
                "duplicate slice for {}",
                s.component
            );
        }
    }
}
