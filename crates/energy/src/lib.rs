//! # pacq-energy — power, area and memory-energy models for PacQ
//!
//! Substitute for the paper's Synopsys Design Compiler (32 nm, 400 MHz)
//! synthesis flow and CACTI 7.0 memory modeling:
//!
//! * [`components`] — leaf component library with calibrated per-op
//!   energies and areas;
//! * [`units`] — Table I unit compositions ([`GemmUnit`]) with bills of
//!   materials, fully-active power and area;
//! * [`breakdown`] — Figure 9 power breakdowns and reuse ratios;
//! * [`sram`] — CACTI-like register-file / L1 / DRAM access energies;
//! * [`calibration`] — the fit record tying every constant to the paper
//!   ratio that pins it.
//!
//! ## Example
//!
//! ```
//! use pacq_energy::{GemmUnit, PowerBreakdown};
//!
//! let baseline = GemmUnit::BaselineFp16Mul.power_units();
//! let parallel = GemmUnit::ParallelFpIntMul.power_units();
//! // Four lane products per cycle for ~18 % more power → Figure 8's 3.38×.
//! assert!((4.0 / (parallel / baseline) - 3.38).abs() < 0.02);
//!
//! let reuse = PowerBreakdown::of(GemmUnit::ParallelFpIntMul).reused_fraction();
//! assert!((reuse - 0.73).abs() < 0.01); // Figure 9
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activity;
pub mod breakdown;
pub mod calibration;
pub mod components;
pub mod sram;
pub mod units;

pub use activity::{ActivityBom, GATE_CLASS_AREAS_GE, PJ_PER_TOGGLE_GE};
pub use breakdown::{BreakdownSlice, Figure9, PowerBreakdown};
pub use components::{BomEntry, Component, Provenance, ENERGY_UNIT_PJ};
pub use sram::{MemoryKind, SramModel};
pub use units::{GemmUnit, CLOCK_HZ};
