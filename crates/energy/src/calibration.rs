//! Calibration record: which paper-reported number pins which constant.
//!
//! The paper's hardware numbers come from Synopsys DC synthesis (32 nm,
//! 400 MHz) and CACTI 7.0 — neither of which is reproducible here, so the
//! component library of [`crate::components`] is *fitted* to the paper's
//! published ratios instead. This module documents the fit, exposes the
//! headline derived quantities, and the test suite asserts they land
//! inside tight bands around the paper's values.
//!
//! # The fitted system
//!
//! With energies in units of the baseline FP16 multiplier (≡ 1.0):
//!
//! | Anchor (paper) | Equation |
//! |---|---|
//! | Baseline FP16 MUL ≡ 1.0 | `10·e16 + e5 + en + er = 1` |
//! | Fig. 8: 3.38× thr/W at 4× throughput (INT4) | `P(parallel MUL) = 4 / 3.38 = 1.1834` |
//! | Fig. 8: 6.75× at 8× (INT2) | same unit, same power — consistent: `8/6.75 = 1.185` |
//! | Fig. 9: 75 % reuse in parallel INT11 MUL | `10·β·e16 / (12·β·e16 + 4·e6) = 0.75` |
//! | Fig. 9: 73 % reuse in parallel FP-INT MUL | `(10·β·e16 + e5 + en + er) / 1.1834 = 0.73` |
//!
//! Solution adopted (β is the reduced activity of the parallel array's
//! adders — physically, 11×4-bit partial products toggle less than
//! 11×11-bit ones):
//!
//! `e16 = 0.08246`, `β = 0.835`, `e6 = 0.02295`, `e5 = 0.045`,
//! `en = 0.1004`, `er = 0.03`, `FP16 adder = 1.2`, `Σ-accumulator = 0.1`.
//!
//! The FP16 adder value (1.2× the multiplier) is fitted to Figure 11's
//! ablation (duplication 2 gives ~1.33× over 1; 4 gives only ~1.1–1.2×
//! over 2): FP16 adders are alignment/normalization dominated, so a value
//! near the multiplier's is physically reasonable at this narrow width.

use crate::units::GemmUnit;
use pacq_fp16::WeightPrecision;

/// Paper value: Figure 8 multiplier throughput/watt gain for INT4.
pub const PAPER_MUL_GAIN_INT4: f64 = 3.38;
/// Paper value: Figure 8 multiplier throughput/watt gain for INT2.
pub const PAPER_MUL_GAIN_INT2: f64 = 6.75;
/// Paper value: Figure 9 reuse ratio of the parallel INT11 multiplier.
pub const PAPER_REUSE_INT11: f64 = 0.75;
/// Paper value: Figure 9 reuse ratio of the parallel FP-INT multiplier.
pub const PAPER_REUSE_FP_INT: f64 = 0.73;
/// Paper value: Figure 9 average reuse ratio.
pub const PAPER_REUSE_AVG: f64 = 0.69;

/// Derived: multiplier throughput-per-watt gain of the parallel FP-INT
/// unit over the baseline FP16 multiplier, for the given weight precision
/// (Figure 8's first group of bars).
///
/// # Examples
///
/// ```
/// use pacq_energy::calibration;
/// use pacq_fp16::WeightPrecision;
///
/// let g = calibration::mul_throughput_per_watt_gain(WeightPrecision::Int4);
/// assert!((g - 3.38).abs() < 0.02);
/// ```
pub fn mul_throughput_per_watt_gain(precision: WeightPrecision) -> f64 {
    let base = GemmUnit::BaselineFp16Mul;
    let par = GemmUnit::ParallelFpIntMul;
    let thr_gain = par.products_per_cycle(Some(precision)) / base.products_per_cycle(None);
    let power_ratio = par.power_units() / base.power_units();
    thr_gain / power_ratio
}

/// Derived: DP-unit throughput-per-watt gain on the paper's `m2n4k4`
/// DP workload (Figure 8's second group of bars).
///
/// Baseline: 8 outputs in 11 cycles. Parallel: 32 (64) outputs in 19 (35)
/// cycles for INT4 (INT2).
pub fn dp4_throughput_per_watt_gain(precision: WeightPrecision) -> f64 {
    let (outputs, cycles) = match precision {
        WeightPrecision::Int4 => (32.0, 19.0),
        WeightPrecision::Int2 => (64.0, 35.0),
    };
    let thr_gain = (outputs / cycles) / (8.0 / 11.0);
    let power_ratio = GemmUnit::PARALLEL_DP4.power_units() / GemmUnit::BASELINE_DP4.power_units();
    thr_gain / power_ratio
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_gain_matches_fig8() {
        let g4 = mul_throughput_per_watt_gain(WeightPrecision::Int4);
        assert!((g4 - PAPER_MUL_GAIN_INT4).abs() < 0.02, "INT4 gain = {g4}");
        let g2 = mul_throughput_per_watt_gain(WeightPrecision::Int2);
        assert!((g2 - PAPER_MUL_GAIN_INT2).abs() < 0.04, "INT2 gain = {g2}");
    }

    #[test]
    fn dp4_gain_is_positive_and_ordered() {
        // The paper's figure does not give exact DP-4 bars in the text; the
        // shape constraint is: gains > 1, INT2 ≥ INT4, both smaller than
        // the raw multiplier gains (the duplicated trees cost power).
        let g4 = dp4_throughput_per_watt_gain(WeightPrecision::Int4);
        let g2 = dp4_throughput_per_watt_gain(WeightPrecision::Int2);
        assert!(g4 > 1.0, "DP-4 INT4 gain = {g4}");
        assert!(g2 >= g4, "INT2 {g2} < INT4 {g4}");
        assert!(g4 < mul_throughput_per_watt_gain(WeightPrecision::Int4));
        assert!(g2 < mul_throughput_per_watt_gain(WeightPrecision::Int2));
    }
}
