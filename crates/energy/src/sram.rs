//! Analytical SRAM / register-file / DRAM energy model.
//!
//! Stands in for CACTI 7.0, which the paper uses for on-chip SRAM and
//! register-file statistics. The model is the standard first-order one:
//! access energy grows with the square root of capacity (word/bit-line
//! length), scaled by the access width, with a structure factor separating
//! plain RF arrays from tagged caches. Constants are pinned to published
//! 32 nm CACTI-class numbers for the two arrays of Table I (256 KB register
//! file, 96 KB shared L1).
//!
//! Only relative magnitudes matter for the paper's figures (RF ≪ L1 ≪
//! DRAM); absolute pJ values are provided for the EDP harness.

use core::fmt;

use pacq_error::{PacqError, PacqResult};

/// Kind of memory structure, selecting the access-overhead factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryKind {
    /// Multi-banked register file (no tags, local wiring).
    RegisterFile,
    /// Tagged SRAM cache (tag compare + larger crossbar).
    Cache,
    /// Small dedicated operand buffer inside the tensor core.
    OperandBuffer,
    /// Off-chip DRAM (fixed per-bit cost dominated by I/O).
    Dram,
}

impl fmt::Display for MemoryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryKind::RegisterFile => f.write_str("register file"),
            MemoryKind::Cache => f.write_str("cache"),
            MemoryKind::OperandBuffer => f.write_str("operand buffer"),
            MemoryKind::Dram => f.write_str("DRAM"),
        }
    }
}

/// First-order energy model for one memory structure.
///
/// # Examples
///
/// ```
/// use pacq_energy::{MemoryKind, SramModel};
///
/// let rf = SramModel::volta_register_file();
/// let l1 = SramModel::volta_l1();
/// // The hierarchy ordering the dataflow analysis relies on:
/// assert!(rf.read_energy_pj(16) < l1.read_energy_pj(16));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramModel {
    kind: MemoryKind,
    capacity_bytes: u64,
    /// pJ per 16-bit word at this structure (pre-computed from the
    /// analytical formula at construction).
    energy_per_word16_pj: f64,
}

/// Base coefficient: pJ per 16-bit access for a 1 KB register-file-class
/// array. Calibrated so the 256 KB Volta register file costs ~0.6 pJ per
/// 16-bit operand read, in line with published 32 nm estimates.
const RF_BASE_PJ_PER_KB_SQRT: f64 = 0.0375;

/// Structure overhead factor of a tagged cache relative to an RF array.
const CACHE_FACTOR: f64 = 8.0;

/// Operand buffers are tiny flop arrays right next to the datapath.
const OPERAND_BUFFER_PJ_PER_WORD16: f64 = 0.06;

/// DRAM: pJ per 16 bits, dominated by I/O energy (~25 pJ/byte-class).
const DRAM_PJ_PER_WORD16: f64 = 50.0;

impl SramModel {
    /// Creates a model for an on-chip array.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes` is zero for an on-chip structure.
    pub fn new(kind: MemoryKind, capacity_bytes: u64) -> Self {
        let energy_per_word16_pj = match kind {
            MemoryKind::RegisterFile => {
                assert!(
                    capacity_bytes > 0,
                    "register file capacity must be non-zero"
                );
                RF_BASE_PJ_PER_KB_SQRT * (capacity_bytes as f64 / 1024.0).sqrt()
            }
            MemoryKind::Cache => {
                assert!(capacity_bytes > 0, "cache capacity must be non-zero");
                CACHE_FACTOR * RF_BASE_PJ_PER_KB_SQRT * (capacity_bytes as f64 / 1024.0).sqrt()
            }
            MemoryKind::OperandBuffer => OPERAND_BUFFER_PJ_PER_WORD16,
            MemoryKind::Dram => DRAM_PJ_PER_WORD16,
        };
        SramModel {
            kind,
            capacity_bytes,
            energy_per_word16_pj,
        }
    }

    /// Creates a model with an **explicit** per-word16 access energy,
    /// overriding the capacity-derived analytical formula. This is the
    /// constructor the `pacq-arch/v1` template layer uses when a level
    /// declares `access_energy_pj_per_word16`: CACTI-style numbers from
    /// another technology node can be dropped in without re-deriving
    /// the base coefficients.
    ///
    /// # Errors
    ///
    /// Returns [`PacqError::Template`] if the energy is not a positive
    /// finite number, or if an on-chip structure declares a zero
    /// capacity (DRAM is modeled as unbounded and passes 0).
    pub fn with_access_energy(
        kind: MemoryKind,
        capacity_bytes: u64,
        pj_per_word16: f64,
    ) -> PacqResult<Self> {
        if !(pj_per_word16 > 0.0 && pj_per_word16.is_finite()) {
            return Err(PacqError::template(
                "SramModel::with_access_energy",
                format!("{kind}: access energy must be positive and finite, got {pj_per_word16}"),
            ));
        }
        if capacity_bytes == 0 && kind != MemoryKind::Dram {
            return Err(PacqError::template(
                "SramModel::with_access_energy",
                format!("{kind}: capacity must be non-zero for an on-chip structure"),
            ));
        }
        Ok(SramModel {
            kind,
            capacity_bytes,
            energy_per_word16_pj: pj_per_word16,
        })
    }

    /// The Volta-like 256 KB per-SM register file of Table I.
    pub fn volta_register_file() -> Self {
        SramModel::new(MemoryKind::RegisterFile, 256 * 1024)
    }

    /// The Volta-like 96 KB shared L1 of Table I.
    pub fn volta_l1() -> Self {
        SramModel::new(MemoryKind::Cache, 96 * 1024)
    }

    /// One of the two 3072-bit tensor-core operand buffers of Table I.
    pub fn volta_operand_buffer() -> Self {
        SramModel::new(MemoryKind::OperandBuffer, 3072 / 8)
    }

    /// Off-chip DRAM.
    pub fn dram() -> Self {
        SramModel::new(MemoryKind::Dram, 0)
    }

    /// The structure kind.
    pub fn kind(&self) -> MemoryKind {
        self.kind
    }

    /// Capacity in bytes (0 for DRAM, which is modeled as unbounded).
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// The resolved access energy of one 16-bit word, in pJ — the
    /// level's identity in cache keys: two models with equal kinds and
    /// capacities but different energies price reports differently and
    /// must never share a content address.
    pub fn energy_per_word16_pj(&self) -> f64 {
        self.energy_per_word16_pj
    }

    /// Energy of one read of `bits` bits, in pJ.
    pub fn read_energy_pj(&self, bits: u64) -> f64 {
        self.energy_per_word16_pj * bits as f64 / 16.0
    }

    /// Energy of one write of `bits` bits, in pJ (writes cost ~1.1× reads
    /// in this class of model).
    pub fn write_energy_pj(&self, bits: u64) -> f64 {
        1.1 * self.read_energy_pj(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_ordering_holds() {
        let buf = SramModel::volta_operand_buffer();
        let rf = SramModel::volta_register_file();
        let l1 = SramModel::volta_l1();
        let dram = SramModel::dram();
        assert!(buf.read_energy_pj(16) < rf.read_energy_pj(16));
        assert!(rf.read_energy_pj(16) < l1.read_energy_pj(16));
        assert!(l1.read_energy_pj(16) < dram.read_energy_pj(16));
    }

    #[test]
    fn rf_anchor_is_about_0p6_pj() {
        let rf = SramModel::volta_register_file();
        let e = rf.read_energy_pj(16);
        assert!((0.4..0.8).contains(&e), "RF 16-bit read = {e} pJ");
    }

    #[test]
    fn energy_scales_linearly_with_width() {
        let rf = SramModel::volta_register_file();
        assert!((rf.read_energy_pj(32) - 2.0 * rf.read_energy_pj(16)).abs() < 1e-12);
        assert!((rf.read_energy_pj(128) - 8.0 * rf.read_energy_pj(16)).abs() < 1e-12);
    }

    #[test]
    fn energy_grows_with_capacity() {
        let small = SramModel::new(MemoryKind::RegisterFile, 64 * 1024);
        let big = SramModel::new(MemoryKind::RegisterFile, 256 * 1024);
        assert!(big.read_energy_pj(16) > small.read_energy_pj(16));
        // Square-root law: 4× capacity → 2× energy.
        assert!((big.read_energy_pj(16) / small.read_energy_pj(16) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn writes_cost_more_than_reads() {
        let rf = SramModel::volta_register_file();
        assert!(rf.write_energy_pj(16) > rf.read_energy_pj(16));
    }

    #[test]
    #[should_panic(expected = "capacity must be non-zero")]
    fn zero_capacity_rejected() {
        SramModel::new(MemoryKind::Cache, 0);
    }

    #[test]
    fn explicit_access_energy_overrides_the_formula() {
        let rf = SramModel::with_access_energy(MemoryKind::RegisterFile, 256 * 1024, 1.25)
            .expect("valid override");
        assert_eq!(rf.energy_per_word16_pj(), 1.25);
        assert_eq!(rf.capacity_bytes(), 256 * 1024);
        assert!((rf.read_energy_pj(32) - 2.5).abs() < 1e-12);
        // The derived default stays reachable through the getter, so the
        // template layer can render resolved energies bit-exactly.
        let derived = SramModel::volta_register_file();
        assert_eq!(
            derived.read_energy_pj(16).to_bits(),
            derived.energy_per_word16_pj().to_bits()
        );
    }

    #[test]
    fn bad_access_energy_is_a_typed_template_error() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = SramModel::with_access_energy(MemoryKind::Cache, 1024, bad).unwrap_err();
            assert_eq!(err.exit_code(), 9, "{bad}: {err}");
        }
        let err = SramModel::with_access_energy(MemoryKind::Cache, 0, 1.0).unwrap_err();
        assert_eq!(err.exit_code(), 9, "{err}");
        // DRAM is unbounded: zero capacity is its documented shape.
        assert!(SramModel::with_access_energy(MemoryKind::Dram, 0, 42.0).is_ok());
    }
}
