//! Table I unit compositions: bills of materials, power and area.
//!
//! Each [`GemmUnit`] is priced as the sum of its leaf components, with the
//! baseline/new split ([`Provenance`]) that Figure 9's power breakdown
//! reports. "Power" here is synthesis-style fully-active power (every
//! component toggling each cycle), which is what the paper's Design
//! Compiler numbers represent.

use crate::components::{BomEntry, Component, Provenance, ENERGY_UNIT_PJ};
use pacq_fp16::WeightPrecision;

/// Operating frequency of the synthesis point (400 MHz, §V).
pub const CLOCK_HZ: f64 = 400.0e6;

/// A hardware unit from Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GemmUnit {
    /// "INT11 MUL (baseline)": 10 INT16 adders.
    BaselineInt11Mul,
    /// "Parallel INT11 MUL": 12 INT16 adders, 4 INT6 adders.
    ParallelInt11Mul,
    /// "FP16 MUL (baseline)": 1 INT11 MUL, 1 INT5 adder, 1 normalization
    /// unit, 1 rounding unit.
    BaselineFp16Mul,
    /// "Parallel FP-INT-16 MUL": 1 parallel INT11 MUL, 1 INT5 adder,
    /// 1 normalization unit, 4 rounding units.
    ParallelFpIntMul,
    /// "FP-16 DP-4 (baseline)" generalized to width 4/8/16:
    /// `width` FP16 MUL + `width` FP16 adders.
    BaselineDp {
        /// Dot-product width (4, 8 or 16).
        width: usize,
    },
    /// "Parallel FP-INT-16 DP-4" generalized: `width` parallel FP-INT MUL
    /// + `width × duplication` FP16 adders + 1 Σ A accumulator.
    ParallelDp {
        /// Dot-product width (4, 8 or 16).
        width: usize,
        /// Adder-tree duplication level (1, 2 or 4; Figure 11).
        duplication: usize,
    },
    /// Tensor core: 4 DP units (baseline flavour).
    BaselineTensorCore,
    /// Tensor core: 4 parallel DP-4 units (duplication 2).
    PacqTensorCore,
}

impl GemmUnit {
    /// The paper's default parallel DP-4 (width 4, duplication 2).
    pub const PARALLEL_DP4: GemmUnit = GemmUnit::ParallelDp {
        width: 4,
        duplication: 2,
    };
    /// The paper's baseline DP-4.
    pub const BASELINE_DP4: GemmUnit = GemmUnit::BaselineDp { width: 4 };

    /// Bill of materials: every leaf component with count and provenance.
    pub fn bom(&self) -> Vec<BomEntry> {
        use Component as C;
        use Provenance::{New, Reused};
        match *self {
            GemmUnit::BaselineInt11Mul => {
                vec![BomEntry::new(C::Int16Adder, 10, Reused)]
            }
            GemmUnit::ParallelInt11Mul => vec![
                // The 10 original array adders survive (at reduced
                // activity); 2 INT16 adders and the 4 INT6 assembly adders
                // are new (white in Figure 5(c)).
                BomEntry::new(C::Int16AdderParallel, 10, Reused),
                BomEntry::new(C::Int16AdderParallel, 2, New),
                BomEntry::new(C::Int6Adder, 4, New),
            ],
            GemmUnit::BaselineFp16Mul => vec![
                BomEntry::new(C::Int16Adder, 10, Reused),
                BomEntry::new(C::Int5Adder, 1, Reused),
                BomEntry::new(C::NormalizationUnit, 1, Reused),
                BomEntry::new(C::RoundingUnit, 1, Reused),
            ],
            GemmUnit::ParallelFpIntMul => vec![
                BomEntry::new(C::Int16AdderParallel, 10, Reused),
                BomEntry::new(C::Int16AdderParallel, 2, New),
                BomEntry::new(C::Int6Adder, 4, New),
                BomEntry::new(C::Int5Adder, 1, Reused),
                BomEntry::new(C::NormalizationUnit, 1, Reused),
                // One of the four rounding units is the original; three are
                // added for the extra lanes.
                BomEntry::new(C::RoundingUnit, 1, Reused),
                BomEntry::new(C::RoundingUnit, 3, New),
            ],
            GemmUnit::BaselineDp { width } => {
                validate_width(width);
                let mut bom = scale_bom(&GemmUnit::BaselineFp16Mul.bom(), width as u32);
                bom.push(BomEntry::new(C::Fp16Adder, width as u32, Reused));
                bom
            }
            GemmUnit::ParallelDp { width, duplication } => {
                validate_width(width);
                assert!(
                    matches!(duplication, 1 | 2 | 4),
                    "adder tree duplication must be 1, 2 or 4, got {duplication}"
                );
                let mut bom = scale_bom(&GemmUnit::ParallelFpIntMul.bom(), width as u32);
                // The original tree is reused; duplicates are new.
                bom.push(BomEntry::new(C::Fp16Adder, width as u32, Reused));
                if duplication > 1 {
                    bom.push(BomEntry::new(
                        C::Fp16Adder,
                        (width * (duplication - 1)) as u32,
                        New,
                    ));
                }
                bom.push(BomEntry::new(C::SumAccumulator, 1, New));
                bom
            }
            GemmUnit::BaselineTensorCore => scale_bom(&GemmUnit::BASELINE_DP4.bom(), 4),
            GemmUnit::PacqTensorCore => scale_bom(&GemmUnit::PARALLEL_DP4.bom(), 4),
        }
    }

    /// Fully-active power in normalized units (baseline FP16 MUL = 1.0).
    pub fn power_units(&self) -> f64 {
        self.bom().iter().map(BomEntry::energy_units).sum()
    }

    /// Fully-active power in watts at the 400 MHz synthesis point.
    pub fn power_watts(&self) -> f64 {
        self.power_units() * ENERGY_UNIT_PJ * 1e-12 * CLOCK_HZ
    }

    /// Energy of one fully-active cycle, in pJ.
    pub fn energy_per_cycle_pj(&self) -> f64 {
        self.power_units() * ENERGY_UNIT_PJ
    }

    /// Total area in µm².
    pub fn area_um2(&self) -> f64 {
        self.bom().iter().map(BomEntry::area_um2).sum()
    }

    /// Peak multiply throughput in FP16 products per cycle (multiplier
    /// units only; DP throughput depends on the workload schedule).
    pub fn products_per_cycle(&self, precision: Option<WeightPrecision>) -> f64 {
        match *self {
            GemmUnit::BaselineInt11Mul | GemmUnit::BaselineFp16Mul => 1.0,
            GemmUnit::ParallelInt11Mul | GemmUnit::ParallelFpIntMul => {
                precision.map_or(4.0, |p| p.lanes() as f64)
            }
            _ => panic!("products_per_cycle is defined for multiplier units only"),
        }
    }
}

fn validate_width(width: usize) {
    assert!(
        matches!(width, 4 | 8 | 16),
        "DP width must be 4, 8 or 16, got {width}"
    );
}

/// Multiplies every count in a BOM by `factor`.
fn scale_bom(bom: &[BomEntry], factor: u32) -> Vec<BomEntry> {
    bom.iter()
        .map(|e| BomEntry::new(e.component, e.count * factor, e.provenance))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_fp16_mul_power_is_one_unit() {
        let p = GemmUnit::BaselineFp16Mul.power_units();
        assert!((p - 1.0).abs() < 2e-3, "baseline FP16 MUL = {p} units");
    }

    #[test]
    fn parallel_fp_int_mul_power_ratio_matches_fig8() {
        // 4 / 3.38 ≈ 1.1834 (Figure 8's 3.38× throughput/watt at 4×
        // throughput).
        let ratio =
            GemmUnit::ParallelFpIntMul.power_units() / GemmUnit::BaselineFp16Mul.power_units();
        assert!((ratio - 1.1834).abs() < 5e-3, "power ratio = {ratio}");
    }

    #[test]
    fn table_i_adder_counts() {
        let count = |unit: GemmUnit, c: Component| -> u32 {
            unit.bom()
                .iter()
                .filter(|e| e.component == c)
                .map(|e| e.count)
                .sum()
        };
        assert_eq!(count(GemmUnit::BaselineInt11Mul, Component::Int16Adder), 10);
        assert_eq!(
            count(GemmUnit::ParallelInt11Mul, Component::Int16AdderParallel),
            12
        );
        assert_eq!(count(GemmUnit::ParallelInt11Mul, Component::Int6Adder), 4);
        assert_eq!(
            count(GemmUnit::ParallelFpIntMul, Component::RoundingUnit),
            4
        );
        assert_eq!(count(GemmUnit::BASELINE_DP4, Component::Fp16Adder), 4);
        assert_eq!(count(GemmUnit::PARALLEL_DP4, Component::Fp16Adder), 8);
        assert_eq!(count(GemmUnit::PacqTensorCore, Component::Fp16Adder), 32);
    }

    #[test]
    fn duplication_scales_adders_only() {
        let base = GemmUnit::ParallelDp {
            width: 4,
            duplication: 1,
        }
        .power_units();
        let d2 = GemmUnit::ParallelDp {
            width: 4,
            duplication: 2,
        }
        .power_units();
        let d4 = GemmUnit::ParallelDp {
            width: 4,
            duplication: 4,
        }
        .power_units();
        let adder = Component::Fp16Adder.energy_units();
        assert!((d2 - base - 4.0 * adder).abs() < 1e-9);
        assert!((d4 - d2 - 8.0 * adder).abs() < 1e-9);
    }

    #[test]
    fn tensor_core_is_four_dp_units() {
        let tc = GemmUnit::PacqTensorCore.power_units();
        let dp = GemmUnit::PARALLEL_DP4.power_units();
        assert!((tc - 4.0 * dp).abs() < 1e-9);
    }

    #[test]
    fn area_reuse_is_in_the_reported_band() {
        // "reusing ~73% of hardware resources from standard FP16
        // multipliers" — area accounting.
        let reused: f64 = GemmUnit::ParallelFpIntMul
            .bom()
            .iter()
            .filter(|e| e.provenance == Provenance::Reused)
            .map(BomEntry::area_um2)
            .sum();
        let total = GemmUnit::ParallelFpIntMul.area_um2();
        let ratio = reused / total;
        assert!((0.68..0.78).contains(&ratio), "area reuse = {ratio}");
    }

    #[test]
    fn power_watts_is_sane_at_400mhz() {
        // A baseline FP16 multiplier at 0.9 pJ/op and 400 MHz = 0.36 mW.
        let w = GemmUnit::BaselineFp16Mul.power_watts();
        assert!((w - 0.36e-3).abs() / 0.36e-3 < 0.01, "power = {w} W");
    }

    #[test]
    #[should_panic(expected = "DP width must be 4, 8 or 16")]
    fn invalid_dp_width_rejected() {
        GemmUnit::BaselineDp { width: 3 }.bom();
    }
}
