//! The 32 nm component library.
//!
//! The paper synthesizes its units with Synopsys Design Compiler at 400 MHz
//! in 32 nm and reports only *relative* numbers (normalized throughput per
//! watt, power-breakdown percentages, normalized EDP). This library
//! replaces the synthesis flow with a structural cost model: every leaf
//! component carries an energy-per-operation and an area, and units are
//! priced as the sum of their Table I inventories.
//!
//! The constants are **calibrated** so the composed units reproduce the
//! paper's reported ratios — see [`crate::calibration`] for the anchor of
//! every value. Absolute magnitudes are chosen to sit in the plausible
//! 32 nm range (the baseline FP16 multiplier event energy is pinned at
//! 0.9 pJ), but only the ratios matter for the figures.

use core::fmt;

/// One energy unit expressed in picojoules: the event energy of the
/// baseline FP16 multiplier (the normalization point of every figure).
pub const ENERGY_UNIT_PJ: f64 = 0.9;

/// Activity factor of the INT16 adders inside the *parallel* INT11
/// multiplier: its partial products are 11×4-bit rather than 11×11-bit, so
/// each adder sees fewer toggles than in the baseline array. Calibrated —
/// see [`crate::calibration`].
pub const PARALLEL_ARRAY_ACTIVITY: f64 = 0.835;

/// A leaf hardware component of the Table I inventories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// 16-bit integer adder at full (baseline-array) activity.
    Int16Adder,
    /// 16-bit integer adder inside the parallel array (reduced activity).
    Int16AdderParallel,
    /// 6-bit integer adder (Figure 5(d) mantissa assembly).
    Int6Adder,
    /// 5-bit exponent adder.
    Int5Adder,
    /// Normalization unit (1-bit shift + exponent bump).
    NormalizationUnit,
    /// Rounding unit (RNE increment + mux).
    RoundingUnit,
    /// Full FP16 adder (align, add, normalize, round).
    Fp16Adder,
    /// The small Σ A accumulator of Figure 6.
    SumAccumulator,
    /// General-core unpack operation (shift+mask) per weight.
    UnpackShifter,
    /// General-core dequantization multiply (scale × weight) per weight.
    DequantMultiplier,
    /// General-core FP32 multiply-subtract for the ×offset fixup of Eq. (1).
    OffsetFixup,
    /// General-core scale application (× s) per output element.
    ScaleApply,
}

impl Component {
    /// Every component, for iteration in breakdowns.
    pub const ALL: [Component; 12] = [
        Component::Int16Adder,
        Component::Int16AdderParallel,
        Component::Int6Adder,
        Component::Int5Adder,
        Component::NormalizationUnit,
        Component::RoundingUnit,
        Component::Fp16Adder,
        Component::SumAccumulator,
        Component::UnpackShifter,
        Component::DequantMultiplier,
        Component::OffsetFixup,
        Component::ScaleApply,
    ];

    /// Energy per operation in normalized units (baseline FP16 MUL = 1.0).
    ///
    /// Calibration: see [`crate::calibration`]; the multiplier-internal
    /// values solve the system pinned by Figure 8 (3.38×/6.75×) and
    /// Figure 9 (75 % / 73 % reuse).
    pub const fn energy_units(self) -> f64 {
        match self {
            Component::Int16Adder => 0.08246,
            // 0.08246 × PARALLEL_ARRAY_ACTIVITY
            Component::Int16AdderParallel => 0.06885,
            Component::Int6Adder => 0.02295,
            Component::Int5Adder => 0.045,
            Component::NormalizationUnit => 0.1004,
            Component::RoundingUnit => 0.03,
            Component::Fp16Adder => 1.2,
            Component::SumAccumulator => 0.1,
            Component::UnpackShifter => 0.05,
            Component::DequantMultiplier => 1.0,
            Component::OffsetFixup => 1.1,
            Component::ScaleApply => 1.0,
        }
    }

    /// Energy per operation in picojoules.
    pub fn energy_pj(self) -> f64 {
        self.energy_units() * ENERGY_UNIT_PJ
    }

    /// Area in µm² (32 nm-class, loosely scaled from adder bit widths; the
    /// figures never depend on absolute area, only the ~73 % reuse ratio,
    /// which this reproduces).
    pub const fn area_um2(self) -> f64 {
        match self {
            Component::Int16Adder => 60.0,
            Component::Int16AdderParallel => 60.0,
            Component::Int6Adder => 25.0,
            Component::Int5Adder => 22.0,
            Component::NormalizationUnit => 150.0,
            Component::RoundingUnit => 40.0,
            Component::Fp16Adder => 900.0,
            Component::SumAccumulator => 100.0,
            Component::UnpackShifter => 30.0,
            Component::DequantMultiplier => 812.0,
            Component::OffsetFixup => 900.0,
            Component::ScaleApply => 812.0,
        }
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Component::Int16Adder => "INT16 adder",
            Component::Int16AdderParallel => "INT16 adder (parallel array)",
            Component::Int6Adder => "INT6 adder",
            Component::Int5Adder => "INT5 adder",
            Component::NormalizationUnit => "normalization unit",
            Component::RoundingUnit => "rounding unit",
            Component::Fp16Adder => "FP16 adder",
            Component::SumAccumulator => "sum accumulator",
            Component::UnpackShifter => "unpack shifter",
            Component::DequantMultiplier => "dequantization multiplier",
            Component::OffsetFixup => "offset fixup MAC",
            Component::ScaleApply => "scale multiplier",
        };
        f.write_str(name)
    }
}

/// Whether a component instance is inherited from the baseline design or
/// newly added — the purple/white split of Figures 5(c) and 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Provenance {
    /// Present in the baseline design (purple in the paper's figures).
    Reused,
    /// Added by the PacQ design (white in the paper's figures).
    New,
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Provenance::Reused => f.write_str("reused"),
            Provenance::New => f.write_str("new"),
        }
    }
}

/// A counted component instance inside a unit's bill of materials.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BomEntry {
    /// The leaf component.
    pub component: Component,
    /// Number of instances.
    pub count: u32,
    /// Whether the instances are reused from the baseline or new.
    pub provenance: Provenance,
}

impl BomEntry {
    /// Creates an entry.
    pub const fn new(component: Component, count: u32, provenance: Provenance) -> Self {
        BomEntry {
            component,
            count,
            provenance,
        }
    }

    /// Total energy of these instances per fully-active cycle, in units.
    pub fn energy_units(&self) -> f64 {
        self.component.energy_units() * self.count as f64
    }

    /// Total area of these instances in µm².
    pub fn area_um2(&self) -> f64 {
        self.component.area_um2() * self.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_fp16_mul_components_sum_to_one_unit() {
        // 10 INT16 adders + INT5 adder + normalization + rounding = 1.0
        // (the normalization point of every figure).
        let total = 10.0 * Component::Int16Adder.energy_units()
            + Component::Int5Adder.energy_units()
            + Component::NormalizationUnit.energy_units()
            + Component::RoundingUnit.energy_units();
        assert!((total - 1.0).abs() < 1e-3, "baseline FP16 MUL = {total}");
    }

    #[test]
    fn parallel_activity_factor_is_consistent() {
        let full = Component::Int16Adder.energy_units();
        let reduced = Component::Int16AdderParallel.energy_units();
        assert!((reduced - full * PARALLEL_ARRAY_ACTIVITY).abs() < 1e-3);
    }

    #[test]
    fn energy_is_positive_for_all_components() {
        for c in Component::ALL {
            assert!(c.energy_units() > 0.0, "{c} has non-positive energy");
            assert!(c.area_um2() > 0.0, "{c} has non-positive area");
            assert!(c.energy_pj() > 0.0);
        }
    }

    #[test]
    fn bom_entry_scales_by_count() {
        let e = BomEntry::new(Component::Fp16Adder, 8, Provenance::New);
        assert!((e.energy_units() - 9.6).abs() < 1e-9);
        assert!((e.area_um2() - 7200.0).abs() < 1e-9);
    }
}
