//! Property-based tests for the energy/area models.

use pacq_energy::{GemmUnit, MemoryKind, PowerBreakdown, SramModel};
use proptest::prelude::*;

proptest! {
    /// SRAM access energy is monotone in capacity and linear in width.
    #[test]
    fn sram_energy_monotone(
        cap_kb in 1u64..4096,
        bits in prop::sample::select(vec![8u64, 16, 32, 64, 128]),
    ) {
        for kind in [MemoryKind::RegisterFile, MemoryKind::Cache] {
            let small = SramModel::new(kind, cap_kb * 1024);
            let big = SramModel::new(kind, (cap_kb + 1) * 1024);
            prop_assert!(big.read_energy_pj(bits) > small.read_energy_pj(bits));
            // Linear in width.
            let e1 = small.read_energy_pj(bits);
            let e2 = small.read_energy_pj(bits * 2);
            prop_assert!((e2 - 2.0 * e1).abs() < 1e-9 * e2.max(1.0));
            // Writes cost more than reads.
            prop_assert!(small.write_energy_pj(bits) > small.read_energy_pj(bits));
        }
    }

    /// Tagged caches always cost more than RF arrays of equal capacity.
    #[test]
    fn cache_overhead_holds(cap_kb in 1u64..512) {
        let rf = SramModel::new(MemoryKind::RegisterFile, cap_kb * 1024);
        let l1 = SramModel::new(MemoryKind::Cache, cap_kb * 1024);
        prop_assert!(l1.read_energy_pj(16) > rf.read_energy_pj(16));
    }

    /// DP unit power grows strictly with duplication and width.
    #[test]
    fn dp_power_monotone(width in prop::sample::select(vec![4usize, 8, 16])) {
        let mut last = 0.0;
        for dup in [1usize, 2, 4] {
            let p = GemmUnit::ParallelDp { width, duplication: dup }.power_units();
            prop_assert!(p > last);
            last = p;
        }
        if width < 16 {
            let wide = GemmUnit::ParallelDp { width: width * 2, duplication: 1 }.power_units();
            let narrow = GemmUnit::ParallelDp { width, duplication: 1 }.power_units();
            prop_assert!(wide > narrow);
        }
    }

    /// Breakdown fractions are a partition of unity for every unit.
    #[test]
    fn breakdown_partitions_unity(
        unit in prop::sample::select(vec![
            GemmUnit::BaselineInt11Mul,
            GemmUnit::ParallelInt11Mul,
            GemmUnit::BaselineFp16Mul,
            GemmUnit::ParallelFpIntMul,
            GemmUnit::BASELINE_DP4,
            GemmUnit::PARALLEL_DP4,
            GemmUnit::BaselineTensorCore,
            GemmUnit::PacqTensorCore,
        ]),
    ) {
        let b = PowerBreakdown::of(unit);
        let sum: f64 = b.slices().iter().map(|s| s.fraction).sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&b.reused_fraction()));
        for s in b.slices() {
            prop_assert!(s.fraction > 0.0);
            prop_assert!(s.power_units > 0.0);
        }
        // Power and area must both be positive and finite.
        prop_assert!(unit.power_units().is_finite() && unit.power_units() > 0.0);
        prop_assert!(unit.area_um2().is_finite() && unit.area_um2() > 0.0);
        prop_assert!(unit.power_watts() > 0.0);
    }
}
