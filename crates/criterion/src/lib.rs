//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! Hermetic build environments cannot fetch crates.io dependencies, so
//! the workspace's `harness = false` benches link against this in-tree
//! harness instead (see `DESIGN.md` §8). It keeps criterion's call
//! shapes — groups, `bench_with_input`, throughput annotations, the two
//! `criterion_group!` forms — and implements a plain
//! warmup-then-sample timing loop on `std::time::Instant`.
//!
//! Reported statistics are the median and min/max over the sample set,
//! plus derived element throughput when [`Throughput::Elements`] was
//! set. There is no outlier analysis, HTML report, or baseline
//! comparison; for A/B numbers run the bench twice and compare medians.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Target time spent measuring each benchmark (after warmup).
const MEASURE_BUDGET: Duration = Duration::from_millis(400);
/// Warmup budget per benchmark.
const WARMUP_BUDGET: Duration = Duration::from_millis(80);

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A two-part id: `function_name/parameter`.
    pub fn new<F: fmt::Display, P: fmt::Display>(function_name: F, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `routine` in a warmup-then-sample loop, keeping per-sample
    /// wall-clock times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup and per-iteration cost estimate.
        let mut iters: u64 = 0;
        let warm_start = Instant::now();
        loop {
            std::hint::black_box(routine());
            iters += 1;
            if warm_start.elapsed() >= WARMUP_BUDGET {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters as f64;

        // Choose a batch size so `sample_size` samples fit the budget.
        let budget = MEASURE_BUDGET.as_secs_f64() / self.sample_size as f64;
        let batch = ((budget / per_iter.max(1e-9)) as u64).max(1);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let dt = t0.elapsed();
            self.samples
                .push(dt / u32::try_from(batch).unwrap_or(u32::MAX));
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn fmt_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.3} G{unit}/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.3} M{unit}/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.3} K{unit}/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {unit}/s")
    }
}

fn report(name: &str, samples: &mut [Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];
    let mut line = format!(
        "{name:<44} time: [{} {} {}]",
        fmt_duration(lo),
        fmt_duration(median),
        fmt_duration(hi)
    );
    if let Some(tp) = throughput {
        let secs = median.as_secs_f64().max(1e-12);
        let (count, unit) = match tp {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        line.push_str(&format!("  thrpt: {}", fmt_rate(count as f64 / secs, unit)));
    }
    println!("{line}");
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<I: Into<BenchmarkId>, R: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut routine: R,
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut bencher);
        let label = format!("{}/{}", self.name, id);
        report(&label, &mut bencher.samples, self.throughput);
        self
    }

    /// Benchmarks `routine` with a borrowed input under `id`.
    pub fn bench_with_input<I, In, R>(&mut self, id: I, input: &In, mut routine: R) -> &mut Self
    where
        I: Into<BenchmarkId>,
        In: ?Sized,
        R: FnMut(&mut Bencher, &In),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut bencher, input);
        let label = format!("{}/{}", self.name, id);
        report(&label, &mut bencher.samples, self.throughput);
        self
    }

    /// Ends the group (prints a separating newline).
    pub fn finish(self) {
        println!();
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks `routine` outside any group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: &str,
        mut routine: R,
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut bencher);
        report(id, &mut bencher.samples, None);
        self
    }
}

/// Declares a benchmark group function; both criterion forms are
/// accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        // Tiny sample size keeps unit tests fast; budgets still apply.
        Criterion::default().sample_size(2)
    }

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u64;
        let mut c = quick();
        let mut group = c.benchmark_group("t");
        group.throughput(Throughput::Elements(4));
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = quick();
        let mut group = c.benchmark_group("t");
        group.bench_with_input(BenchmarkId::new("sq", 3), &3u64, |b, &x| b.iter(|| x * x));
        group.finish();
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", "p").to_string(), "f/p");
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }
}
