//! Figure 11: ablation on the adder-tree duplication level of the
//! parallel FP-INT DP-4 (throughput / watt on `m16n16k16`).

use pacq::{Architecture, GemmShape, GroupShape, SmConfig, Workload};
use pacq_bench::{banner, times};
use pacq_energy::GemmUnit;
use pacq_fp16::WeightPrecision;

fn main() -> std::process::ExitCode {
    pacq_bench::exit(run())
}

fn run() -> pacq::PacqResult<()> {
    let metrics = pacq_bench::init("fig11")?;
    banner(
        "Figure 11",
        "adder-tree duplication ablation (PacQ DP-4, m16n16k16)",
        "dup 2 gives 1.33x (1.38x) over dup 1 for INT4 (INT2); dup 4 only 1.11x (1.18x) over dup 2",
    );

    let shape = GemmShape::M16N16K16;
    for precision in [WeightPrecision::Int4, WeightPrecision::Int2] {
        println!("\n-- {precision} weights --");
        println!(
            "{:<13} {:>10} {:>16} {:>14} {:>12}",
            "duplication", "cycles", "power (units)", "thr/watt", "vs previous"
        );
        let mut prev: Option<f64> = None;
        let mut first: Option<f64> = None;
        for dup in [1usize, 2, 4] {
            let mut cfg = metrics
                .template()
                .map_or_else(SmConfig::volta_like, pacq::ArchTemplate::sm_config);
            cfg.adder_tree_duplication = dup;
            let runner = metrics
                .runner()?
                .with_config(cfg)
                .with_group(GroupShape::along_k(16));
            let r = runner.analyze(Architecture::Pacq, Workload::new(shape, precision))?;
            let power = GemmUnit::ParallelDp {
                width: 4,
                duplication: dup,
            }
            .power_units();
            let tpw = shape.macs() as f64 / r.stats.total_cycles as f64 / power;
            let base = *first.get_or_insert(tpw);
            let step = prev.map_or(1.0, |p| tpw / p);
            println!(
                "{:<13} {:>10} {:>16.3} {:>13.2}x {:>12}",
                dup,
                r.stats.total_cycles,
                power,
                tpw / base,
                times(step)
            );
            prev = Some(tpw);
        }
    }
    println!(
        "\nshape check: duplication 2 is the knee — the dup-4 step gain is \
         much smaller than the dup-2 step gain (paper: 1.33/1.38 then 1.11/1.18)."
    );
    metrics.finish()?;
    Ok(())
}
