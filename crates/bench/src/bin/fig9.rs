//! Figure 9: power breakdown of the proposed units, split into reused
//! (purple) and newly added (white) components.

use pacq_bench::{banner, pct};
use pacq_energy::{Figure9, PowerBreakdown, Provenance};

fn main() -> std::process::ExitCode {
    pacq_bench::exit(run())
}

fn run() -> pacq::PacqResult<()> {
    let metrics = pacq_bench::init("fig9")?;
    banner(
        "Figure 9",
        "power breakdown of the parallel units (reused vs new)",
        "~75% reuse (INT11 MUL), ~73% (FP-INT MUL), ~60% (DP-4), average 69%",
    );

    let fig = Figure9::compute();
    for (name, b) in [
        ("Parallel INT-11 MUL", &fig.parallel_int11),
        ("Parallel FP-INT-16 MUL", &fig.parallel_fp_int),
        ("Parallel FP-INT-16 DP-4", &fig.parallel_dp4),
    ] {
        print_breakdown(name, b);
    }
    println!(
        "\naverage reuse ratio: {}   (paper: 69%)",
        pct(fig.average_reuse())
    );
    metrics.finish()?;
    Ok(())
}

fn print_breakdown(name: &str, b: &PowerBreakdown) {
    println!("\n-- {name} --");
    println!(
        "{:<38} {:>6} {:>8} {:>10} {:>9}",
        "component", "count", "prov", "power", "share"
    );
    for s in b.slices() {
        println!(
            "{:<38} {:>6} {:>8} {:>10.4} {:>9}",
            s.component.to_string(),
            s.count,
            if s.provenance == Provenance::Reused {
                "reused"
            } else {
                "new"
            },
            s.power_units,
            pct(s.fraction)
        );
    }
    println!(
        "{:<38} {:>6} {:>8} {:>10.4} {:>9}",
        "TOTAL",
        "",
        "",
        b.total_units(),
        pct(1.0)
    );
    println!("reused fraction: {}", pct(b.reused_fraction()));
}
