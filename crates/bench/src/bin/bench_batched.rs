//! Batched-backend speedup trajectory: measures the scalar vs batched
//! functional execute paths over a Llama-7B-derived decode sweep grid
//! and appends one trajectory point to `BENCH_batched.json`.
//!
//! Each grid cell runs both backends on identical inputs, checks the
//! results are bit-identical (the batched backend's contract — see the
//! equivalence suites), and records the best-of-N wall times plus the
//! speedup. The JSON file accumulates one point per invocation, so the
//! kernel-speed history survives across commits; CI uploads it as an
//! artifact next to the Criterion summary.
//!
//! Usage: `cargo run -p pacq-bench --release --bin bench_batched`
//! (optional: `--label NAME` to tag the trajectory point, `--out PATH`
//! to redirect the JSON file, plus the shared `--jobs`/`--metrics`
//! flags; the pool is pinned to one worker during timing so the ratio
//! measures the kernels, not the scheduler).

use pacq::{Architecture, Backend, GemmRunner, GroupShape, NumericsMode, PacqError, PacqResult};
use pacq_bench::{banner, times};
use pacq_fp16::WeightPrecision;
use pacq_quant::synth::SynthGenerator;
use pacq_quant::MatrixF32;
use pacq_trace::Json;
use std::hint::black_box;
use std::time::Instant;

/// Timed runs per (cell, backend) after one warmup; the minimum is kept.
const TIMED_RUNS: usize = 3;

fn main() -> std::process::ExitCode {
    pacq_bench::exit(run())
}

/// One measured cell of the sweep grid.
struct Row {
    shape: (usize, usize, usize),
    arch: Architecture,
    precision: WeightPrecision,
    scalar_s: f64,
    batched_s: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.scalar_s / self.batched_s.max(1e-12)
    }
}

/// The short CLI token for an architecture (`--arch` vocabulary).
fn arch_token(arch: Architecture) -> &'static str {
    match arch {
        Architecture::Pacq => "pacq",
        Architecture::PackedK => "packedk",
        Architecture::StandardDequant => "std",
        Architecture::InputStationary => "is",
    }
}

/// The short CLI token for a weight precision (`--precision` vocabulary).
fn precision_token(precision: WeightPrecision) -> &'static str {
    match precision {
        WeightPrecision::Int4 => "int4",
        WeightPrecision::Int2 => "int2",
    }
}

fn run() -> PacqResult<()> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (argv, label) = take_value_flag(&argv, "--label")?;
    let (argv, out) = take_value_flag(&argv, "--out")?;
    let label = label.unwrap_or_else(|| "dev".to_string());
    let out = out.unwrap_or_else(|| "BENCH_batched.json".to_string());
    let metrics = pacq_bench::init_filtered("bench_batched", &argv)?;
    banner(
        "bench_batched",
        "scalar vs batched backend wall time on the Llama decode grid",
        "batched >= 2x scalar throughput, bit-identical results",
    );

    // Pin the pool to one worker: the trajectory tracks kernel speed,
    // not parallel scaling (crates/bench/benches/parallel.rs owns that).
    let prev_jobs = rayon::current_num_threads();
    pacq::par::configure_jobs(Some(1));

    // Llama-7B decode slices, column-restricted so the scalar reference
    // finishes in seconds: batch-16 and batch-1 attention projections
    // plus a batch-16 FFN slice at the 11008 reduction depth.
    let shapes = [(16, 256, 4096), (1, 256, 4096), (16, 256, 11008)];
    let precisions = [WeightPrecision::Int4, WeightPrecision::Int2];
    let archs = [
        Architecture::Pacq,
        Architecture::PackedK,
        Architecture::StandardDequant,
    ];

    let mut rows = Vec::new();
    println!(
        "\n{:<16} {:>8} {:>5} {:>12} {:>12} {:>9}",
        "shape", "arch", "prec", "scalar (s)", "batched (s)", "speedup"
    );
    for &(m, n, k) in &shapes {
        let mut gen = SynthGenerator::new((m ^ (n << 8) ^ (k << 16)) as u64 | 1);
        let a = gen.llm_activations(m, k).to_f16();
        let w = gen.llm_weights(k, n);
        for &precision in &precisions {
            for &arch in &archs {
                let base = GemmRunner::new()
                    .with_group(GroupShape::along_k(128))
                    .with_numerics(NumericsMode::PaperRounded);
                let packed = base.quantize_and_pack(&w, precision, arch)?;
                let scalar = base.clone().with_backend(Backend::Scalar);
                let batched = base.clone().with_backend(Backend::Batched);
                let (c_scalar, scalar_s) = time_best(|| scalar.execute(arch, &a, &packed))?;
                let (c_batched, batched_s) = time_best(|| batched.execute(arch, &a, &packed))?;
                check_bits(&c_scalar, &c_batched, (m, n, k), arch, precision)?;
                let row = Row {
                    shape: (m, n, k),
                    arch,
                    precision,
                    scalar_s,
                    batched_s,
                };
                println!(
                    "{:<16} {:>8} {:>5} {:>12.6} {:>12.6} {:>9}",
                    format!("m{m}n{n}k{k}"),
                    arch_token(arch),
                    precision_token(precision),
                    row.scalar_s,
                    row.batched_s,
                    times(row.speedup())
                );
                rows.push(row);
            }
        }
    }
    pacq::par::configure_jobs(Some(prev_jobs));

    let geomean = geomean_speedup(&rows);
    let min = rows.iter().map(Row::speedup).fold(f64::INFINITY, f64::min);
    println!(
        "\ngeomean speedup: {}   min speedup: {}   ({} cells, best of {TIMED_RUNS})",
        times(geomean),
        times(min),
        rows.len()
    );

    append_point(&out, &label, geomean, min, &rows)?;
    println!("appended trajectory point `{label}` -> {out}");
    metrics.finish()?;
    Ok(())
}

/// One warmup then [`TIMED_RUNS`] timed runs; returns the last result
/// and the minimum wall time (the least-noisy estimator for a
/// deterministic kernel).
fn time_best<F>(mut f: F) -> PacqResult<(MatrixF32, f64)>
where
    F: FnMut() -> PacqResult<MatrixF32>,
{
    let mut result = black_box(f()?);
    let mut best = f64::INFINITY;
    for _ in 0..TIMED_RUNS {
        let t0 = Instant::now();
        result = black_box(f()?);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    Ok((result, best))
}

/// The trajectory is only meaningful if both backends agree bit-for-bit;
/// a mismatch is an audit failure, not a slow run.
fn check_bits(
    scalar: &MatrixF32,
    batched: &MatrixF32,
    (m, n, k): (usize, usize, usize),
    arch: Architecture,
    precision: WeightPrecision,
) -> PacqResult<()> {
    let mismatches = scalar
        .as_slice()
        .iter()
        .zip(batched.as_slice().iter())
        .filter(|(l, r)| l.to_bits() != r.to_bits())
        .count();
    if mismatches != 0 {
        return Err(PacqError::AuditMismatch {
            counter: "bench_batched.backend_bits".to_string(),
            case: format!(
                "m{m}n{n}k{k} {} {}",
                precision_token(precision),
                arch_token(arch)
            ),
            observed: format!("{mismatches} diverging elements"),
            expected: "0 diverging elements".to_string(),
        });
    }
    Ok(())
}

fn geomean_speedup(rows: &[Row]) -> f64 {
    let log_sum: f64 = rows.iter().map(|r| r.speedup().ln()).sum();
    (log_sum / rows.len().max(1) as f64).exp()
}

/// Extracts `flag VALUE` / `flag=VALUE` from the argument list.
fn take_value_flag(args: &[String], flag: &str) -> PacqResult<(Vec<String>, Option<String>)> {
    let mut rest = Vec::new();
    let mut value = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == flag {
            let v = it
                .next()
                .ok_or_else(|| PacqError::usage(format!("missing value for {flag}")))?;
            value = Some(v.clone());
        } else if let Some(v) = arg.strip_prefix(&format!("{flag}=")) {
            value = Some(v.to_string());
        } else {
            rest.push(arg.clone());
        }
    }
    Ok((rest, value))
}

/// Parses the existing trajectory file (if any), appends one point, and
/// rewrites the canonical rendering.
fn append_point(path: &str, label: &str, geomean: f64, min: f64, rows: &[Row]) -> PacqResult<()> {
    let mut doc = match std::fs::read_to_string(path) {
        Ok(text) => {
            let doc = Json::parse(&text)?;
            if doc.get("schema").and_then(Json::as_str) != Some("pacq-bench-batched/v1") {
                return Err(PacqError::invalid_input(
                    "bench_batched",
                    format!("{path} exists but is not a pacq-bench-batched/v1 document"),
                ));
            }
            doc
        }
        Err(_) => {
            let mut doc = Json::object();
            doc.set("schema", "pacq-bench-batched/v1");
            doc.set("points", Json::Arr(Vec::new()));
            doc
        }
    };

    let mut point = Json::object();
    point.set("label", label);
    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    point.set("created_unix_s", stamp);
    point.set("timed_runs", TIMED_RUNS);
    point.set("geomean_speedup", round6(geomean));
    point.set("min_speedup", round6(min));
    let cells: Vec<Json> = rows
        .iter()
        .map(|r| {
            let mut cell = Json::object();
            cell.set(
                "shape",
                format!("m{}n{}k{}", r.shape.0, r.shape.1, r.shape.2),
            );
            cell.set("arch", arch_token(r.arch));
            cell.set("precision", precision_token(r.precision));
            cell.set("scalar_s", round6(r.scalar_s));
            cell.set("batched_s", round6(r.batched_s));
            cell.set("speedup", round6(r.speedup()));
            cell
        })
        .collect();
    point.set("cells", Json::Arr(cells));

    let points = match doc.get("points").and_then(Json::as_arr) {
        Some(existing) => {
            let mut v = existing.to_vec();
            v.push(point);
            v
        }
        None => vec![point],
    };
    doc.set("points", Json::Arr(points));
    std::fs::write(path, doc.render()).map_err(|e| PacqError::Io {
        context: "bench_batched",
        message: format!("writing {path}: {e}"),
    })?;
    Ok(())
}

/// Six decimals is plenty for wall times and keeps the file diffable.
fn round6(x: f64) -> f64 {
    (x * 1e6).round() / 1e6
}
