//! Table II: RTN-based PTQ quality with quantization groups spanning
//! both [n, k] dimensions vs k-only groups.
//!
//! Substitution (DESIGN.md §4): Llama2-7B + WikiText-2/C4 are replaced by
//! synthetic LLM-statistics weights and the TinyLm perplexity proxy; the
//! claim under test — equal-volume 2-D groups are quality-neutral — is a
//! property of the RTN group quantizer itself, exercised identically.

use pacq::GroupShape;
use pacq_bench::banner;
use pacq_fp16::WeightPrecision;
use pacq_quant::evaluate_rtn;
use pacq_quant::lm::TinyLm;
use pacq_quant::synth::SynthGenerator;

fn main() -> std::process::ExitCode {
    pacq_bench::exit(run())
}

fn run() -> pacq::PacqResult<()> {
    let metrics = pacq_bench::init("table2")?;
    banner(
        "Table II",
        "RTN PTQ quality: k-only vs [n,k] quantization groups (W4A16)",
        "Llama2-7B wikitext-2: fp16 5.47, g128 5.73, g[32,4] 5.72, g256 5.75, g[64,4] 5.77",
    );

    let groups = [
        ("g128", GroupShape::G128),
        ("g[32,4]", GroupShape::G32X4),
        ("g256", GroupShape::G256),
        ("g[64,4]", GroupShape::G64X4),
    ];

    // ---------------------------------------------------------------
    // Weight / output-domain error on synthetic LLM-scale matrices.
    // ---------------------------------------------------------------
    println!("\n-- weight & output error (synthetic 1024x512 LLM weights, W4A16) --");
    println!(
        "{:<10} {:>14} {:>12} {:>16}",
        "group", "weight MSE", "SQNR (dB)", "output rel err"
    );
    let mut g = SynthGenerator::new(123);
    let w = g.llm_weights(1024, 512);
    let a = g.llm_activations(16, 1024);
    for (name, group) in groups {
        let e = evaluate_rtn(&w, &a, WeightPrecision::Int4, group)?;
        println!(
            "{:<10} {:>14.4e} {:>12.2} {:>16.5}",
            name, e.weight_mse, e.weight_sqnr_db, e.output_rel_err
        );
    }

    // ---------------------------------------------------------------
    // Perplexity proxy over two "datasets" (two sampled corpora, the
    // wikitext-2/C4 stand-ins).
    // ---------------------------------------------------------------
    println!("\n-- perplexity proxy (TinyLm; two sampled corpora) --");
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "corpus", "fp16", "g128", "g[32,4]", "g256", "g[64,4]"
    );
    let lm = TinyLm::new(31337, 96, 128, 512);
    for (corpus, seed) in [("corpus-A", 11u64), ("corpus-B", 22u64)] {
        let tokens = lm.sample(0, 800, seed);
        let base = lm.perplexity(&tokens);
        let mut row = format!("{corpus:<12} {base:>10.3}");
        for (_, group) in groups {
            let q = lm.quantize_ffn(WeightPrecision::Int4, group)?;
            row.push_str(&format!(" {:>10.3}", q.perplexity(&tokens)));
        }
        println!("{row}");
    }
    println!(
        "\nshape check (matches Table II): quantized ppl sits slightly above fp16,\n\
         and each [n,k] column is statistically indistinguishable from its\n\
         equal-volume k-only column (g128 ≈ g[32,4], g256 ≈ g[64,4])."
    );
    metrics.finish()?;
    Ok(())
}
