//! Figure 7: (a) normalized register-file accesses and (b) normalized
//! speedup — PacQ vs the hyper-asymmetric GEMM with weights packed
//! along k, on the `m16n16k16` workload.

use pacq::{Architecture, GemmShape, GroupShape, Workload};
use pacq_bench::{banner, pct, times};
use pacq_fp16::WeightPrecision;

fn main() -> std::process::ExitCode {
    pacq_bench::exit(run())
}

fn run() -> pacq::PacqResult<()> {
    let metrics = pacq_bench::init("fig7")?;
    banner(
        "Figure 7",
        "register-file accesses and speedup, PacQ vs P(B_x)_k (m16n16k16)",
        "(a) up to 54.3% fewer RF accesses; (b) average speedup 1.99x",
    );

    // k=16 here, so the (k-grouped) scales span the whole reduction.
    let runner = metrics.runner()?.with_group(GroupShape::along_k(16));
    let shape = GemmShape::M16N16K16;

    println!(
        "\n{:<8} {:<12} {:>14} {:>14} {:>12} {:>10}",
        "weights", "arch", "RF accesses", "normalized", "cycles", "speedup"
    );
    let mut reductions = Vec::new();
    let mut speedups = Vec::new();
    let points: Vec<(Architecture, Workload)> = [WeightPrecision::Int4, WeightPrecision::Int2]
        .iter()
        .flat_map(|&p| {
            let wl = Workload::new(shape, p);
            [(Architecture::PackedK, wl), (Architecture::Pacq, wl)]
        })
        .collect();
    let reports = runner.analyze_sweep(&points)?;
    for (i, precision) in [WeightPrecision::Int4, WeightPrecision::Int2]
        .into_iter()
        .enumerate()
    {
        let base = &reports[2 * i];
        let pacq = &reports[2 * i + 1];
        let base_rf = base.stats.rf.total_accesses();
        let pacq_rf = pacq.stats.rf.total_accesses();
        let speedup = base.stats.total_cycles as f64 / pacq.stats.total_cycles as f64;
        println!(
            "{:<8} {:<12} {:>14} {:>14.3} {:>12} {:>10}",
            precision.to_string(),
            format!("P(B_{})_k", precision.lanes()),
            base_rf,
            1.0,
            base.stats.total_cycles,
            times(1.0),
        );
        println!(
            "{:<8} {:<12} {:>14} {:>14.3} {:>12} {:>10}",
            "",
            "PacQ",
            pacq_rf,
            pacq_rf as f64 / base_rf as f64,
            pacq.stats.total_cycles,
            times(speedup),
        );
        reductions.push(1.0 - pacq_rf as f64 / base_rf as f64);
        speedups.push(speedup);
    }

    println!(
        "\n(a) RF access reduction: INT4 {}, INT2 {}   (paper: up to 54.3%)",
        pct(reductions[0]),
        pct(reductions[1])
    );
    println!(
        "(b) speedup: INT4 {}, INT2 {}, average {}   (paper: average 1.99x)",
        times(speedups[0]),
        times(speedups[1]),
        times(speedups.iter().sum::<f64>() / speedups.len() as f64)
    );
    metrics.finish()?;
    Ok(())
}
