//! Extended experiment: gate-level inventory of the Table I multipliers.
//!
//! The paper reports synthesis results; this harness prints the actual
//! gate-level netlists' inventories and the cross-checks between the
//! RTL layer and the calibrated cost model.

use pacq_bench::banner;
use pacq_energy::GemmUnit;
use pacq_rtl::{Fp16MulCircuit, ParallelFpIntCircuit};

fn main() -> std::process::ExitCode {
    pacq_bench::exit(run())
}

fn run() -> pacq::PacqResult<()> {
    let metrics = pacq_bench::init("rtl_report")?;
    banner(
        "RTL report (extension)",
        "gate-level netlists of the Table I multipliers",
        "independent cross-check of the calibrated synthesis model",
    );

    let mut base = Fp16MulCircuit::build();
    let mut par = ParallelFpIntCircuit::build();

    println!(
        "\n{:<26} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "unit", "gates", "area (GE)", "AND", "XOR", "MUX"
    );
    for (name, counts, area) in [
        (
            "FP16 MUL (baseline)",
            base.netlist.gate_counts(),
            base.netlist.area_ge(),
        ),
        (
            "Parallel FP-INT-16 MUL",
            par.netlist.gate_counts(),
            par.netlist.area_ge(),
        ),
    ] {
        println!(
            "{:<26} {:>12} {:>12.1} {:>10} {:>10} {:>10}",
            name,
            counts.total(),
            area,
            counts.and,
            counts.xor,
            counts.mux
        );
    }

    let rtl_ratio = par.netlist.area_ge() / base.netlist.area_ge();
    let model_ratio = GemmUnit::ParallelFpIntMul.area_um2() / GemmUnit::BaselineFp16Mul.area_um2();
    println!("\narea ratio (parallel / baseline): RTL {rtl_ratio:.3} vs calibrated model {model_ratio:.3}");

    // Switching-activity study over a shared random operand stream.
    let mut x: u64 = 0x5EED;
    for _ in 0..2000 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let a = (x & 0xFFFF) as u16;
        let w = ((x >> 16) & 0xFFFF) as u16;
        base.multiply(a, w);
        par.multiply(a, w);
    }
    let base_tpp = base.netlist.toggles_per_simulation();
    let par_tpp = par.netlist.toggles_per_simulation() / 4.0;
    println!("\nswitching activity (toggles per produced FP16 product):");
    println!("  baseline FP16 MUL:       {base_tpp:>8.1}");
    println!(
        "  parallel FP-INT (INT4):  {par_tpp:>8.1}  ({:.2}x less)",
        base_tpp / par_tpp
    );
    println!("\nreading: the parallel unit moves less logic per product (narrow 11x4");
    println!("lanes, shared sign/exponent), which is the physical root of Figure 8's");
    println!("throughput-per-watt advantage — reproduced here from gate-level toggles");
    println!("rather than the calibrated constants.");
    metrics.finish()?;
    Ok(())
}
