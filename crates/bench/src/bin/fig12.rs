//! Figure 12: (a) the effect of the DP unit size (DP-8, DP-16) and
//! (b) comparison with Mix-GEMM (binary segmentation), both on
//! `m16n16k16` in throughput per watt.

use pacq::{Architecture, GemmShape, GroupShape, SmConfig, Workload};
use pacq_bench::{banner, times};
use pacq_energy::GemmUnit;
use pacq_fp16::WeightPrecision;
use pacq_mixgemm::{pacq_advantage_over_mixgemm, MixGemmModel};

fn main() -> std::process::ExitCode {
    pacq_bench::exit(run())
}

fn run() -> pacq::PacqResult<()> {
    let metrics = pacq_bench::init("fig12")?;
    banner(
        "Figure 12",
        "(a) DP unit size study; (b) PacQ vs Mix-GEMM (m16n16k16, thr/watt)",
        "(a) PacQ gains orthogonal to DP size; (b) 4.12x (INT4), 3.75x (INT2) over Mix-GEMM",
    );

    // ------------------------------------------------------------- (a)
    // Steady-state shape: at m16n16k16 the pipeline fill/drain tails
    // dominate wide DP units and mask the orthogonality; the paper's
    // simulator reports steady-state throughput.
    println!("\n-- (a) DP unit size (steady state, m16n256k256) --");
    println!(
        "{:<8} {:>16} {:>16} {:>18}",
        "width", "baseline t/w", "PacQ t/w", "PacQ advantage"
    );
    let shape = GemmShape::new(16, 256, 256);
    for width in [4usize, 8, 16] {
        let mut cfg = metrics
            .template()
            .map_or_else(SmConfig::volta_like, pacq::ArchTemplate::sm_config);
        cfg.dp_width = width;
        let runner = metrics
            .runner()?
            .with_config(cfg)
            .with_group(GroupShape::G128);
        let wl = Workload::new(shape, WeightPrecision::Int4);
        let base = runner.analyze(Architecture::PackedK, wl)?;
        let pacq = runner.analyze(Architecture::Pacq, wl)?;
        let base_p = GemmUnit::BaselineDp { width }.power_units();
        let pacq_p = GemmUnit::ParallelDp {
            width,
            duplication: 2,
        }
        .power_units();
        let base_tpw = shape.macs() as f64 / base.stats.total_cycles as f64 / base_p;
        let pacq_tpw = shape.macs() as f64 / pacq.stats.total_cycles as f64 / pacq_p;
        println!(
            "DP-{:<5} {:>16.3} {:>16.3} {:>18}",
            width,
            base_tpw,
            pacq_tpw,
            times(pacq_tpw / base_tpw)
        );
    }
    println!("shape check: the advantage holds at every DP width (orthogonality).");

    // ------------------------------------------------------------- (b)
    println!("\n-- (b) vs Mix-GEMM (binary segmentation, FP16 activations) --");
    println!(
        "{:<10} {:>22} {:>18} {:>16}",
        "weights", "Mix-GEMM pJ/MAC (u)", "PacQ pJ/MAC (u)", "PacQ advantage"
    );
    let mix = MixGemmModel::calibrated();
    for precision in [WeightPrecision::Int4, WeightPrecision::Int2] {
        println!(
            "{:<10} {:>22.3} {:>18.3} {:>16}",
            precision.to_string(),
            mix.energy_per_mac_units(precision),
            pacq_mixgemm::pacq_energy_per_mac_units(),
            times(pacq_advantage_over_mixgemm(precision))
        );
    }
    println!("paper: 4.12x (INT4), 3.75x (INT2); binary segmentation pays a fixed");
    println!("FP16-side cost per element, so fewer weight bits barely help it.");
    metrics.finish()?;
    Ok(())
}
