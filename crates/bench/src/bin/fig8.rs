//! Figure 8: normalized performance (throughput / watt) of the parallel
//! FP-INT-16 multiplier and DP-4 against the baseline FP16 designs, for
//! INT4 and INT2 weights. The DP-4 workload is `m2n4k4`.

use pacq_bench::{banner, times};
use pacq_energy::{calibration, GemmUnit};
use pacq_fp16::{BaselineDpUnit, ParallelDpUnit, WeightPrecision};

fn main() -> std::process::ExitCode {
    pacq_bench::exit(run())
}

fn run() -> pacq::PacqResult<()> {
    let metrics = pacq_bench::init("fig8")?;
    banner(
        "Figure 8",
        "throughput/watt of the parallel FP-INT units vs FP16 baselines",
        "MUL: 3.38x (INT4), 6.75x (INT2); DP-4: 11 cyc/8 outputs baseline vs 19 (35) cyc/32 (64) outputs",
    );

    println!("\n-- multiplier level --");
    println!(
        "{:<26} {:>12} {:>14} {:>12}",
        "unit", "thr (/cyc)", "power (units)", "thr/watt"
    );
    let base_p = GemmUnit::BaselineFp16Mul.power_units();
    println!(
        "{:<26} {:>12} {:>14.4} {:>12}",
        "FP16 MUL (baseline)",
        1,
        base_p,
        times(1.0)
    );
    for precision in [WeightPrecision::Int4, WeightPrecision::Int2] {
        let gain = calibration::mul_throughput_per_watt_gain(precision);
        println!(
            "{:<26} {:>12} {:>14.4} {:>12}",
            format!("Parallel FP-INT ({precision})"),
            precision.lanes(),
            GemmUnit::ParallelFpIntMul.power_units(),
            times(gain)
        );
    }
    println!("paper: 3.38x (INT4), 6.75x (INT2); measured above from the calibrated unit model");

    println!("\n-- DP-4 level (workload m2n4k4) --");
    println!(
        "{:<26} {:>10} {:>10} {:>14} {:>12}",
        "unit", "outputs", "cycles", "power (units)", "thr/watt"
    );
    let bdp = BaselineDpUnit::new(4)?;
    let base_cycles = bdp.cycles_for_outputs(8);
    let base_power = GemmUnit::BASELINE_DP4.power_units();
    let base_tpw = 8.0 / base_cycles as f64 / base_power;
    println!(
        "{:<26} {:>10} {:>10} {:>14.3} {:>12}",
        "FP-16 DP-4 (baseline)",
        8,
        base_cycles,
        base_power,
        times(1.0)
    );
    for precision in [WeightPrecision::Int4, WeightPrecision::Int2] {
        let pdp = ParallelDpUnit::new(4, 2, precision)?;
        // m2n4k4: 2 m rows × 4 packed word-columns = 8 batches, each
        // producing `lanes` outputs.
        let batches = 8;
        let outputs = batches * pdp.outputs_per_batch();
        let cycles = pdp.cycles_for_batches(batches);
        let power = GemmUnit::PARALLEL_DP4.power_units();
        let tpw = outputs as f64 / cycles as f64 / power;
        println!(
            "{:<26} {:>10} {:>10} {:>14.3} {:>12}",
            format!("Parallel DP-4 ({precision})"),
            outputs,
            cycles,
            power,
            times(tpw / base_tpw)
        );
    }
    println!(
        "paper cycle anchors: baseline 8 outputs in 11 cycles; parallel 32 in 19 (INT4), 64 in 35 (INT2)"
    );
    metrics.finish()?;
    Ok(())
}
