//! Extended experiment: EDP and speedup vs batch size.
//!
//! The paper's intro argues multi-batch serving is compute-bound, which
//! is where weight-only quantization stops helping and PacQ starts. This
//! sweep shows the crossover: at small batch the standard flow drowns in
//! dequantization overhead; at large batch that amortizes, and PacQ's
//! remaining advantage is the 2× compute throughput + traffic savings.

use pacq::{Architecture, GemmShape, Workload};
use pacq_bench::{banner, pct, times};
use pacq_fp16::WeightPrecision;

fn main() -> std::process::ExitCode {
    pacq_bench::exit(run())
}

fn run() -> pacq::PacqResult<()> {
    let metrics = pacq_bench::init("batch_sweep")?;
    banner(
        "Batch sweep (extension)",
        "EDP reduction and speedup vs batch size (n4096 k4096, INT4)",
        "dequant overhead dominates at small batch and amortizes at large batch",
    );

    let runner = metrics.runner()?;
    println!(
        "\n{:<8} {:>14} {:>14} {:>16} {:>16}",
        "batch", "std dequant %", "speedup v std", "speedup v P(B)k", "EDP reduction"
    );
    let batches = [16usize, 32, 64, 128, 256, 512];
    let points: Vec<(Architecture, Workload)> = batches
        .iter()
        .flat_map(|&m| {
            let wl = Workload::new(GemmShape::new(m, 4096, 4096), WeightPrecision::Int4);
            [
                (Architecture::StandardDequant, wl),
                (Architecture::PackedK, wl),
                (Architecture::Pacq, wl),
            ]
        })
        .collect();
    for (i, triple) in runner.analyze_sweep(&points)?.chunks(3).enumerate() {
        let (std, pk, pq) = (&triple[0], &triple[1], &triple[2]);
        let dequant_frac = std.stats.general_cycles as f64 / std.stats.total_cycles as f64;
        println!(
            "{:<8} {:>14} {:>14} {:>16} {:>16}",
            batches[i],
            pct(dequant_frac),
            times(pq.speedup_over(std)),
            times(pq.speedup_over(pk)),
            pct(1.0 - pq.edp_normalized_to(std)),
        );
    }
    println!(
        "\nreading: the dequantization phase is ~50% of the standard flow's time\n\
         at batch 16 and fades below 3% by batch 512; PacQ's speedup over the\n\
         P(B)k baseline stays at ~2x (pure dataflow + parallel-multiplier gain),\n\
         so the total EDP advantage narrows but persists at scale."
    );
    metrics.finish()?;
    Ok(())
}
