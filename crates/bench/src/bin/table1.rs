//! Table I: configuration of PacQ and the baselines — regenerated from
//! the unit models so the printed inventory is guaranteed to match what
//! the simulator actually prices.

use pacq_bench::banner;
use pacq_energy::{Component, GemmUnit};
use pacq_simt::SmConfig;

fn main() -> std::process::ExitCode {
    pacq_bench::exit(run())
}

fn run() -> pacq::PacqResult<()> {
    let metrics = pacq_bench::init("table1")?;
    banner(
        "Table I",
        "configuration of PacQ and the baselines",
        "unit inventories and the Volta-like SM parameters",
    );

    let count = |unit: GemmUnit, c: Component| -> u32 {
        unit.bom()
            .iter()
            .filter(|e| e.component == c)
            .map(|e| e.count)
            .sum()
    };

    println!(
        "\nINT11 MUL (baseline):      {} INT16 adders",
        count(GemmUnit::BaselineInt11Mul, Component::Int16Adder)
    );
    println!(
        "Parallel INT11 MUL:        {} INT16 adders, {} INT6 adders",
        count(GemmUnit::ParallelInt11Mul, Component::Int16AdderParallel),
        count(GemmUnit::ParallelInt11Mul, Component::Int6Adder)
    );
    println!(
        "FP16 MUL (baseline):       1 INT11 MUL, {} INT5 adder, {} normalization unit, {} rounding unit",
        count(GemmUnit::BaselineFp16Mul, Component::Int5Adder),
        count(GemmUnit::BaselineFp16Mul, Component::NormalizationUnit),
        count(GemmUnit::BaselineFp16Mul, Component::RoundingUnit)
    );
    println!(
        "Parallel FP-INT-16 MUL:    1 parallel INT11 MUL, {} INT5 adder, {} normalization unit, {} rounding units",
        count(GemmUnit::ParallelFpIntMul, Component::Int5Adder),
        count(GemmUnit::ParallelFpIntMul, Component::NormalizationUnit),
        count(GemmUnit::ParallelFpIntMul, Component::RoundingUnit)
    );
    println!(
        "FP-16 DP-4 (baseline):     4 FP16 MUL, {} FP16 adders",
        count(GemmUnit::BASELINE_DP4, Component::Fp16Adder)
    );
    println!(
        "Parallel FP-INT-16 DP-4:   4 parallel FP-INT-16 MUL, {} FP16 adders, {} sum accumulator",
        count(GemmUnit::PARALLEL_DP4, Component::Fp16Adder),
        count(GemmUnit::PARALLEL_DP4, Component::SumAccumulator)
    );

    let cfg = SmConfig::volta_like();
    println!("\nTensor Core:               4 DP-4 units (parallel for PacQ, baseline otherwise)");
    println!(
        "Streaming Multiprocessor:  {} tensor cores, {}x{}-bit operand buffers,",
        cfg.tensor_cores, cfg.operand_buffers, cfg.operand_buffer_bits
    );
    println!(
        "                           {} KB register file, {} KB shared L1 cache",
        cfg.register_file_bytes / 1024,
        cfg.l1_bytes / 1024
    );
    println!("clock: {} MHz (synthesis point)", cfg.clock_hz / 1e6);

    println!("\n-- derived unit costs (calibrated model) --");
    println!(
        "{:<28} {:>16} {:>12}",
        "unit", "power (units)", "area (um^2)"
    );
    for unit in [
        GemmUnit::BaselineInt11Mul,
        GemmUnit::ParallelInt11Mul,
        GemmUnit::BaselineFp16Mul,
        GemmUnit::ParallelFpIntMul,
        GemmUnit::BASELINE_DP4,
        GemmUnit::PARALLEL_DP4,
        GemmUnit::BaselineTensorCore,
        GemmUnit::PacqTensorCore,
    ] {
        println!(
            "{:<28} {:>16.4} {:>12.0}",
            format!("{unit:?}"),
            unit.power_units(),
            unit.area_um2()
        );
    }
    metrics.finish()?;
    Ok(())
}
