//! Extended experiment: the activity-calibration table behind
//! `pacq audit --activity`.
//!
//! Simulates both Table I multiplier netlists over the deterministic
//! precision-representative operand stream, prices the per-gate-class
//! toggle histograms through the activity BOM, and tabulates the
//! activity-derived pJ/op against the analytic (paper-calibrated)
//! constants the simulator prices with — the cross-check the audit
//! subsystem enforces within its declared tolerance.

use pacq::activity::{calibrate, DEFAULT_OPS, DEFAULT_SEED, DEFAULT_TOLERANCE};
use pacq_bench::banner;
use pacq_energy::{ActivityBom, PJ_PER_TOGGLE_GE};

fn main() -> std::process::ExitCode {
    pacq_bench::exit(run())
}

fn run() -> pacq::PacqResult<()> {
    let metrics = pacq_bench::init("fig_activity")?;
    banner(
        "Activity calibration (extension)",
        "toggle-priced multiplier energy vs the calibrated constants",
        "Table I synthesis energy, cross-checked from gate-level activity",
    );

    let bom = ActivityBom::calibrated();
    let points = calibrate(&bom, DEFAULT_OPS, DEFAULT_SEED)?;

    println!(
        "\nstimulus: {DEFAULT_OPS} ops, seed {DEFAULT_SEED:#x}, \
{PJ_PER_TOGGLE_GE:.2e} pJ per GE-toggle"
    );
    println!(
        "\n{:<10} {:<5} {:>5} {:>6} {:>12} {:>12} {:>12} {:>8}",
        "unit", "prec", "lanes", "nodes", "toggles/op", "analytic pJ", "activity pJ", "rel"
    );
    for p in &points {
        println!(
            "{:<10} {:<5} {:>5} {:>6} {:>12.2} {:>12.4} {:>12.4} {:>+7.1}%",
            p.unit_token(),
            p.precision_token(),
            p.profile.lanes,
            p.profile.nodes,
            p.profile.logic_toggles_per_op(),
            p.analytic_pj_per_op,
            p.activity_pj_per_op,
            100.0 * p.rel_error()
        );
    }

    println!("\nper-gate-class toggle histograms (whole run):");
    println!(
        "{:<10} {:<5} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "unit", "prec", "not", "and", "or", "xor", "mux"
    );
    for p in &points {
        print!("{:<10} {:<5}", p.unit_token(), p.precision_token());
        for &(_, toggles) in &p.profile.toggles_by_class {
            print!(" {toggles:>10}");
        }
        println!();
    }

    println!("\nreading: the baseline INT4 point anchors the pJ-per-GE-toggle constant");
    println!("(sub-percent residual by construction); every other row is a genuine");
    println!("prediction. The INT2 rows diverge structurally — the gate-level INT2");
    println!("build duplicates the 4-lane array where the analytic model assumes one");
    println!("shared unit — which is why `pacq audit --activity` defaults to the wide");
    println!("±{DEFAULT_TOLERANCE} relative tolerance documented in DESIGN.md.");
    metrics.finish()?;
    Ok(())
}
