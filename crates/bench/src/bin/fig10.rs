//! Figure 10: normalized energy-delay product of PacQ vs the standard
//! dequantization-based GEMM and the `P(B_x)_k` hyper-asymmetric flow,
//! on Llama2-7B layer shapes at batch 16.

use pacq::{Architecture, Comparison, GemmShape, Workload};
use pacq_bench::{banner, pct};
use pacq_fp16::WeightPrecision;

fn main() -> std::process::ExitCode {
    pacq_bench::exit(run())
}

fn run() -> pacq::PacqResult<()> {
    let metrics = pacq_bench::init("fig10")?;
    banner(
        "Figure 10",
        "normalized EDP: Standard vs P(B_x)_k vs PacQ (Llama2-7B shapes, batch 16)",
        "up to 81.4% EDP reduction at m16n4096k4096",
    );

    let runner = metrics.runner()?;
    let shapes = [
        GemmShape::new(16, 4096, 4096), // attention projection / paper headline
        GemmShape::new(16, 11008, 4096), // FFN up projection
        GemmShape::new(16, 4096, 11008), // FFN down projection
        GemmShape::new(16, 12288, 4096), // fused QKV
    ];

    println!(
        "\n{:<20} {:<8} {:>12} {:>12} {:>12} {:>14}",
        "workload", "weights", "std", "P(B_x)_k", "PacQ", "PacQ reduction"
    );
    let mut best = 0f64;
    let mut best_name = String::new();
    // All shape × precision × architecture points fan out at once; the
    // ordered sweep result is then consumed three reports at a time.
    let points: Vec<(Architecture, Workload)> = shapes
        .iter()
        .flat_map(|&shape| {
            [WeightPrecision::Int4, WeightPrecision::Int2]
                .into_iter()
                .flat_map(move |p| {
                    let wl = Workload::new(shape, p);
                    [
                        (Architecture::StandardDequant, wl),
                        (Architecture::PackedK, wl),
                        (Architecture::Pacq, wl),
                    ]
                })
        })
        .collect();
    let mut reports = runner.analyze_sweep(&points)?.into_iter();
    for shape in shapes {
        for precision in [WeightPrecision::Int4, WeightPrecision::Int2] {
            let wl = Workload::new(shape, precision);
            let cmp = Comparison::new(vec![
                reports.next().expect("report"),
                reports.next().expect("report"),
                reports.next().expect("report"),
            ]);
            let edp = cmp.normalized_edp();
            let reduction = 1.0 - edp[2];
            if reduction > best {
                best = reduction;
                best_name = wl.to_string();
            }
            println!(
                "{:<20} {:<8} {:>12.3} {:>12.3} {:>12.3} {:>14}",
                shape.to_string(),
                precision.to_string(),
                edp[0],
                edp[1],
                edp[2],
                pct(reduction)
            );
        }
    }
    println!(
        "\nbest PacQ EDP reduction: {} at {}   (paper: up to 81.4% at m16n4096k4096)",
        pct(best),
        best_name
    );
    metrics.finish()?;
    Ok(())
}
