//! Extended experiment: full-model sweep — every catalogued LLM's
//! decoder-block GEMMs through the three architectures, at batch 16
//! (Figure 10 generalized beyond Llama2-7B).

use pacq::llama::{analyze_block, Model};
use pacq::Architecture;
use pacq_bench::{banner, pct, times};
use pacq_fp16::WeightPrecision;

fn main() -> std::process::ExitCode {
    pacq_bench::exit(run())
}

fn run() -> pacq::PacqResult<()> {
    let metrics = pacq_bench::init("model_zoo")?;
    banner(
        "Model zoo (extension)",
        "per-block totals across models (batch 16)",
        "Figure 10 generalized: PacQ's EDP win holds across model scales",
    );

    let runner = metrics.runner()?;
    println!(
        "\n{:<12} {:<8} {:>14} {:>14} {:>14} {:>12} {:>14}",
        "model", "weights", "std cycles", "P(B)k cycles", "PacQ cycles", "speedup", "EDP reduction"
    );
    let arches = [
        Architecture::StandardDequant,
        Architecture::PackedK,
        Architecture::Pacq,
    ];
    for model in Model::ALL {
        for precision in [WeightPrecision::Int4, WeightPrecision::Int2] {
            let mut cycles = [0u64; 3];
            let mut edp = [0f64; 3];
            // One parallel sweep per block: layers × architectures.
            for (_, reports) in analyze_block(&runner, model, 16, precision, &arches)? {
                for (i, r) in reports.iter().enumerate() {
                    cycles[i] += r.stats.total_cycles;
                    edp[i] += r.edp_pj_s;
                }
            }
            println!(
                "{:<12} {:<8} {:>14} {:>14} {:>14} {:>12} {:>14}",
                model.name(),
                precision.to_string(),
                cycles[0],
                cycles[1],
                cycles[2],
                times(cycles[0] as f64 / cycles[2] as f64),
                pct(1.0 - edp[2] / edp[0]),
            );
        }
    }
    println!("\nweight storage at INT4 (GEMM weights only, packed incl. nothing else):");
    for model in Model::ALL {
        let fp16_gb = model.gemm_weights() as f64 * 2.0 / 1e9;
        let int4_gb = model.gemm_weights() as f64 * 0.5 / 1e9;
        println!(
            "  {:<12} fp16 {:>7.1} GB -> int4 {:>6.1} GB",
            model.name(),
            fp16_gb,
            int4_gb
        );
    }
    println!("(paper quotes Llama2-70B: 131.6 GB fp16 vs 35.8 GB int4 incl. embeddings)");
    metrics.finish()?;
    Ok(())
}
