//! Stationarity-class comparison: the input-stationary dataflow vs the
//! weight-stationary flows (standard dequant, `P(B_x)_k`) and the
//! output-stationary PacQ datapath, on Llama2-7B layer shapes.
//!
//! Where fig10 shows the headline PacQ-vs-baselines EDP claim, this
//! figure isolates *what stationarity alone buys*: input-stationary
//! holds the activation tile in the tensor-core operand buffers across
//! the n loop (ending the `P(B_x)_k` A-refetch pathology) but keeps the
//! baseline sequential-weight datapath — so the gap between the `is`
//! and `pacq` columns is the parallel FP-INT multiplier and the
//! n-packed streaming, not tile movement.

use pacq::{Architecture, Comparison, GemmShape, Workload};
use pacq_bench::{banner, pct};
use pacq_fp16::WeightPrecision;

fn main() -> std::process::ExitCode {
    pacq_bench::exit(run())
}

/// The four stationarity points, in pipeline order: two
/// weight-stationary flows, the input-stationary refactor, then the
/// output-stationary PacQ machine.
const ARCHS: [Architecture; 4] = [
    Architecture::StandardDequant,
    Architecture::PackedK,
    Architecture::InputStationary,
    Architecture::Pacq,
];

fn run() -> pacq::PacqResult<()> {
    let metrics = pacq_bench::init("fig_is")?;
    banner(
        "Dataflow stationarity",
        "normalized EDP: ws (std, P(B_x)_k) vs is vs os/PacQ (Llama2-7B shapes)",
        "input-stationarity ends the A-refetch pathology; PacQ still needs the packed datapath",
    );

    let runner = metrics.runner()?;
    let shapes = [
        GemmShape::new(16, 4096, 4096),  // attention projection
        GemmShape::new(16, 11008, 4096), // FFN up projection
        GemmShape::new(256, 4096, 4096), // prefill-heavy batch
    ];

    println!(
        "\n{:<20} {:<8} {:>10} {:>10} {:>10} {:>10} {:>14}",
        "workload", "weights", "std", "P(B_x)_k", "is", "PacQ", "is vs P(B_x)_k"
    );
    let points: Vec<(Architecture, Workload)> = shapes
        .iter()
        .flat_map(|&shape| {
            [WeightPrecision::Int4, WeightPrecision::Int2]
                .into_iter()
                .flat_map(move |p| {
                    let wl = Workload::new(shape, p);
                    ARCHS.map(|arch| (arch, wl))
                })
        })
        .collect();
    let mut reports = runner.analyze_sweep(&points)?.into_iter();
    let mut best = 0f64;
    let mut best_name = String::new();
    for shape in shapes {
        for precision in [WeightPrecision::Int4, WeightPrecision::Int2] {
            let wl = Workload::new(shape, precision);
            let cmp = Comparison::new(
                ARCHS
                    .iter()
                    .map(|_| reports.next().expect("report"))
                    .collect(),
            );
            let edp = cmp.normalized_edp();
            // How much of the packed-k flow's EDP the input-stationary
            // refactor claws back, before any datapath change.
            let recovered = 1.0 - edp[2] / edp[1];
            if recovered > best {
                best = recovered;
                best_name = wl.to_string();
            }
            println!(
                "{:<20} {:<8} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>14}",
                shape.to_string(),
                precision.to_string(),
                edp[0],
                edp[1],
                edp[2],
                edp[3],
                pct(recovered)
            );
        }
    }
    println!(
        "\nbest is-over-P(B_x)_k EDP recovery: {} at {}   (tile movement alone; \
         the rest of the PacQ column is the packed datapath)",
        pct(best),
        best_name
    );
    metrics.finish()?;
    Ok(())
}
