//! Extended experiment: numeric fidelity of the PacQ datapath.
//!
//! The paper states "there is no approximation in our design" (§V). This
//! study quantifies what the *literal* datapath — which rounds every
//! biased product `A × (B + 1032)` to FP16 before the adder trees — does
//! to the recovered GEMM, versus a Wide variant that keeps the exact
//! 22-bit products, versus the dequantization baseline. See
//! EXPERIMENTS.md, "Reproduction findings beyond the paper".

use pacq::{Architecture, GemmRunner, GroupShape, NumericsMode};
use pacq_bench::banner;
use pacq_fp16::{Fp16, Int4, PackedWord, ParallelDpUnit, RoundingMode, WeightPrecision};
use pacq_quant::synth::SynthGenerator;
use pacq_quant::MatrixF32;

fn rel_err(got: &MatrixF32, want: &MatrixF32) -> f64 {
    let d = MatrixF32::from_fn(got.rows(), got.cols(), |r, c| {
        got.get(r, c) - want.get(r, c)
    });
    d.frobenius_norm() / want.frobenius_norm().max(1e-30)
}

fn main() -> std::process::ExitCode {
    pacq_bench::exit(run())
}

fn run() -> pacq::PacqResult<()> {
    let metrics = pacq_bench::init("numerics")?;
    banner(
        "Numerics study (extension)",
        "GEMM error of the PacQ datapath: rounded biased products vs wide products",
        "paper asserts 'no approximation'; the literal rounding units say otherwise",
    );

    println!(
        "\n{:<8} {:>6} {:<10} {:>16} {:>16} {:>16}",
        "weights", "k", "act scale", "std dequant", "PacQ (rounded)", "PacQ (wide)"
    );
    for precision in [WeightPrecision::Int4, WeightPrecision::Int2] {
        for k in [64usize, 256, 1024] {
            for act_scale in [0.25f32, 1.0, 4.0] {
                let mut g = SynthGenerator::new(1000 + k as u64);
                let w = g.llm_weights(k, 32);
                let base_a = g.llm_activations(8, k);
                let a = MatrixF32::from_fn(8, k, |m, kk| base_a.get(m, kk) * act_scale).to_f16();

                let group = GroupShape::along_k(64.min(k));
                let mk = |mode| {
                    GemmRunner::new()
                        .with_group(group)
                        .with_numerics(mode)
                        .with_cache_opt(metrics.cache())
                };

                let p_n =
                    mk(NumericsMode::Wide).quantize_and_pack(&w, precision, Architecture::Pacq)?;
                let p_k = mk(NumericsMode::Wide).quantize_and_pack(
                    &w,
                    precision,
                    Architecture::PackedK,
                )?;
                let oracle = pacq_simt::reference(&a, &p_n);

                let std =
                    mk(NumericsMode::Wide).execute(Architecture::StandardDequant, &a, &p_k)?;
                let rounded =
                    mk(NumericsMode::PaperRounded).execute(Architecture::Pacq, &a, &p_n)?;
                let wide = mk(NumericsMode::Wide).execute(Architecture::Pacq, &a, &p_n)?;

                println!(
                    "{:<8} {:>6} {:<10} {:>16.3e} {:>16.3e} {:>16.3e}",
                    precision.to_string(),
                    k,
                    format!("x{act_scale}"),
                    rel_err(&std, &oracle),
                    rel_err(&rounded, &oracle),
                    rel_err(&wide, &oracle),
                );
            }
        }
    }
    rounding_unit_study()?;

    println!(
        "\nreading: the rounded-product datapath carries orders of magnitude more\n\
         error than either the dequantization baseline or the wide variant,\n\
         because rounding the ~1032x-inflated products erases the bits where\n\
         the true Σ A·B lives. Exactness requires the 22-bit products to reach\n\
         the accumulator unrounded (NumericsMode::Wide)."
    );
    metrics.finish()?;
    Ok(())
}

/// RNE vs truncating rounding units on a k=128 packed dot product: the
/// truncation bias is systematic, so it does not average out over k the
/// way RNE's symmetric error does.
fn rounding_unit_study() -> pacq::PacqResult<()> {
    println!("\n-- rounding-unit design point: RNE vs truncate (k=128 dot, INT4) --");
    println!(
        "{:<12} {:>16} {:>16}",
        "mode", "mean |err|", "mean signed err"
    );
    let k = 128;
    let a: Vec<Fp16> = (0..k)
        .map(|i| Fp16::from_f32(((i * 37 + 11) % 64) as f32 / 16.0 - 2.0))
        .collect();
    let words: Vec<PackedWord> = (0..k)
        .map(|i| {
            PackedWord::pack_int4(core::array::from_fn(|l| {
                Int4::new(((i * 13 + l * 5) % 16) as i8 - 8).unwrap()
            }))
        })
        .collect();
    let exact: Vec<f64> = (0..4)
        .map(|lane| {
            a.iter()
                .zip(&words)
                .map(|(&x, w)| {
                    x.to_f32() as f64 * w.signed_lane(WeightPrecision::Int4, lane) as f64
                })
                .sum()
        })
        .collect();
    for (name, mode) in [
        ("RNE", RoundingMode::NearestEven),
        ("truncate", RoundingMode::Truncate),
    ] {
        let dp = ParallelDpUnit::new(4, 2, WeightPrecision::Int4)?.with_rounding(mode);
        let rec = dp.dot_packed(&a, &words).recover();
        let mut abs = 0f64;
        let mut signed = 0f64;
        for lane in 0..4 {
            let e = rec[lane] as f64 - exact[lane];
            abs += e.abs() / 4.0;
            signed += e / 4.0;
        }
        println!("{name:<12} {abs:>16.4} {signed:>16.4}");
    }
    Ok(())
}
