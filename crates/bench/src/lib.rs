//! # pacq-bench — the experiment harness
//!
//! One binary per table/figure of the paper (run them with
//! `cargo run -p pacq-bench --release --bin figN`), plus Criterion
//! benches for the simulator and datapath kernels. This library hosts the
//! small shared formatting helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Applies the shared `--jobs N` / `PACQ_JOBS` knob for a figure/table
/// binary: reads the process arguments, installs the worker count, and
/// returns the effective value. Sweep results are bit-identical at any
/// setting — the knob only changes wall-clock time.
///
/// A malformed or zero worker count is a usage error ([`pacq::PacqError`] with
/// exit code 2), not a silently-ignored warning: a typo'd `--jobs` must
/// not quietly run a multi-hour sweep on the wrong pool size.
pub fn init_jobs() -> pacq::PacqResult<usize> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (_, jobs) = pacq::par::take_jobs_flag(&args)?;
    let env_jobs = pacq::par::validated_env_jobs()?;
    Ok(pacq::par::configure_jobs(jobs.or(env_jobs)))
}

/// Maps a figure/table body onto the process exit status: `Ok` exits 0,
/// `Err` prints the one-line diagnostic to stderr and exits with the
/// error-class code (DESIGN.md §10) — never a backtrace.
pub fn exit(result: pacq::PacqResult<()>) -> std::process::ExitCode {
    match result {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::ExitCode::from(e.exit_code())
        }
    }
}

/// Prints a figure/table banner.
pub fn banner(id: &str, title: &str, paper: &str) {
    println!("{}", "=".repeat(78));
    println!("{id}: {title}");
    println!("paper reports: {paper}");
    println!("{}", "=".repeat(78));
}

/// Formats a ratio as `N.NNx`.
pub fn times(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a fraction as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Formats a large count with thousands grouping.
pub fn grouped(mut v: u64) -> String {
    let mut parts = Vec::new();
    loop {
        if v < 1000 {
            parts.push(v.to_string());
            break;
        }
        parts.push(format!("{:03}", v % 1000));
        v /= 1000;
    }
    parts.reverse();
    parts.join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouping() {
        assert_eq!(grouped(0), "0");
        assert_eq!(grouped(999), "999");
        assert_eq!(grouped(1000), "1,000");
        assert_eq!(grouped(1234567), "1,234,567");
    }

    #[test]
    fn formatting() {
        assert_eq!(times(1.994), "1.99x");
        assert_eq!(pct(0.543), "54.3%");
    }
}
