//! # pacq-bench — the experiment harness
//!
//! One binary per table/figure of the paper (run them with
//! `cargo run -p pacq-bench --release --bin figN`), plus Criterion
//! benches for the simulator and datapath kernels. This library hosts the
//! small shared formatting helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Applies the shared `--jobs N` / `PACQ_JOBS` knob for a figure/table
/// binary: reads the process arguments, installs the worker count, and
/// returns the effective value. Sweep results are bit-identical at any
/// setting — the knob only changes wall-clock time.
///
/// A malformed or zero worker count is a usage error ([`pacq::PacqError`] with
/// exit code 2), not a silently-ignored warning: a typo'd `--jobs` must
/// not quietly run a multi-hour sweep on the wrong pool size.
pub fn init_jobs() -> pacq::PacqResult<usize> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (_, jobs) = pacq::par::take_jobs_flag(&args)?;
    let env_jobs = pacq::par::validated_env_jobs()?;
    Ok(pacq::par::configure_jobs(jobs.or(env_jobs)))
}

/// Run-manifest handle for a figure/table binary: [`init`] arms the
/// process-wide observability collector when `--metrics PATH` is on the
/// command line, and [`Metrics::finish`] drains it into a schema-valid
/// `pacq-metrics/v1` manifest at that path (DESIGN.md §11). Without the
/// flag both are no-ops, so instrumentation stays zero-cost.
#[must_use = "call .finish() at the end of the figure body to write the manifest"]
pub struct Metrics {
    binary: &'static str,
    args: Vec<String>,
    jobs: usize,
    backend: pacq::Backend,
    path: Option<String>,
    cache: Option<std::sync::Arc<pacq::ReportCache>>,
    template: Option<pacq::ArchTemplate>,
}

/// Applies the shared `--jobs` / `--metrics` / `--cache` flags for a
/// figure/table binary (superset of [`init_jobs`]) and returns the
/// manifest handle.
///
/// # Errors
///
/// Returns a usage error ([`pacq::PacqError`], exit code 2) for a
/// malformed or zero worker count or a `--metrics`/`--cache` flag
/// without a value, and an I/O error (exit code 6) when the cache
/// directory cannot be created.
pub fn init(binary: &'static str) -> pacq::PacqResult<Metrics> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    init_filtered(binary, &argv)
}

/// [`init`] for binaries that strip their own flags first: applies the
/// shared `--jobs` / `--metrics` / `--cache` / `--backend` /
/// `--arch-template` flags from the given argument list instead of
/// re-reading the process arguments.
///
/// # Errors
///
/// Same conditions as [`init`], plus template errors (exit code 9)
/// when `--arch-template` names a file that does not validate.
pub fn init_filtered(binary: &'static str, argv: &[String]) -> pacq::PacqResult<Metrics> {
    let (args, path) = pacq::cli::take_metrics_flag(argv)?;
    let (args, cache_dir) = pacq::cli::take_cache_flag(&args)?;
    let (args, jobs) = pacq::par::take_jobs_flag(&args)?;
    let (args, backend_flag) = pacq::backend::take_backend_flag(&args)?;
    let (args, template_path) = pacq::cli::take_arch_template_flag(&args)?;
    let template = match &template_path {
        Some(p) => Some(pacq::cli::load_arch_template(p)?),
        None => None,
    };
    let backend = pacq::backend::resolve_backend(backend_flag)?;
    let env_jobs = pacq::par::validated_env_jobs()?;
    let jobs = pacq::par::configure_jobs(jobs.or(env_jobs));
    if path.is_some() {
        pacq_trace::enable();
    }
    let cache = match cache_dir {
        Some(dir) => Some(std::sync::Arc::new(pacq::ReportCache::open(dir)?)),
        None => None,
    };
    Ok(Metrics {
        binary,
        args,
        jobs,
        backend,
        path,
        cache,
        template,
    })
}

impl Metrics {
    /// The report cache to attach to runners (`--cache DIR`), if any.
    pub fn cache(&self) -> Option<std::sync::Arc<pacq::ReportCache>> {
        self.cache.clone()
    }

    /// The functional compute backend this run selected
    /// (`--backend` / `PACQ_BACKEND`, default scalar). Attach it to
    /// runners with [`pacq::GemmRunner::with_backend`].
    pub fn backend(&self) -> pacq::Backend {
        self.backend
    }

    /// The validated `--arch-template` design point, if one was named.
    pub fn template(&self) -> Option<&pacq::ArchTemplate> {
        self.template.as_ref()
    }

    /// A [`pacq::GemmRunner`] carrying every shared knob of this run:
    /// the `--cache` store, the `--backend` selection, and — when
    /// `--arch-template` was given — the template's machine, energy
    /// model, and content digest (so cached results are keyed to the
    /// template, DESIGN.md §18).
    ///
    /// # Errors
    ///
    /// Returns a template error (exit code 9) when the template's
    /// energy model cannot be derived.
    pub fn runner(&self) -> pacq::PacqResult<pacq::GemmRunner> {
        let mut runner = pacq::GemmRunner::new()
            .with_cache_opt(self.cache())
            .with_backend(self.backend);
        if let Some(t) = &self.template {
            runner = runner
                .with_config(t.sm_config())
                .with_energy_model(t.energy_model()?)
                .with_template_digest(t.digest());
        }
        Ok(runner)
    }

    /// Writes the run manifest if `--metrics` was requested, draining
    /// the collector either way, and prints the cache session tallies
    /// when a store was attached.
    ///
    /// # Errors
    ///
    /// Returns [`pacq::PacqError::Io`] (exit code 6) when the manifest
    /// cannot be written.
    pub fn finish(self) -> pacq::PacqResult<()> {
        if let Some(cache) = &self.cache {
            println!("\ncache: {} hits, {} misses", cache.hits(), cache.misses());
        }
        if let Some(path) = &self.path {
            let mut manifest = pacq_trace::RunManifest::new(self.binary, &self.args);
            manifest = manifest
                .with_jobs(self.jobs)
                .with_effective_jobs(rayon::current_num_threads())
                .with_backend(self.backend.token());
            if let Some(t) = &self.template {
                manifest = manifest.with_arch_template(t.digest());
            }
            manifest.gather();
            pacq_trace::disable();
            manifest.write_to(path)?;
            println!("\nwrote metrics manifest -> {path}");
        }
        Ok(())
    }
}

/// Maps a figure/table body onto the process exit status: `Ok` exits 0,
/// `Err` prints the one-line diagnostic to stderr and exits with the
/// error-class code (DESIGN.md §10) — never a backtrace.
pub fn exit(result: pacq::PacqResult<()>) -> std::process::ExitCode {
    match result {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::ExitCode::from(e.exit_code())
        }
    }
}

/// Prints a figure/table banner.
pub fn banner(id: &str, title: &str, paper: &str) {
    println!("{}", "=".repeat(78));
    println!("{id}: {title}");
    println!("paper reports: {paper}");
    println!("{}", "=".repeat(78));
}

/// Formats a ratio as `N.NNx`.
pub fn times(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a fraction as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Formats a large count with thousands grouping.
pub fn grouped(mut v: u64) -> String {
    let mut parts = Vec::new();
    loop {
        if v < 1000 {
            parts.push(v.to_string());
            break;
        }
        parts.push(format!("{:03}", v % 1000));
        v /= 1000;
    }
    parts.reverse();
    parts.join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouping() {
        assert_eq!(grouped(0), "0");
        assert_eq!(grouped(999), "999");
        assert_eq!(grouped(1000), "1,000");
        assert_eq!(grouped(1234567), "1,234,567");
    }

    #[test]
    fn formatting() {
        assert_eq!(times(1.994), "1.99x");
        assert_eq!(pct(0.543), "54.3%");
    }
}
