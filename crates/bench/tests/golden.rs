//! Golden-file tests for the figure binaries (ISSUE 5).
//!
//! Each figure binary (fig7–fig12, fig_is) is a pure function of the
//! committed model
//! constants: no wall-clock lines, no RNG without a fixed seed, no
//! host-dependent paths. That makes full-stdout pinning viable — any
//! drift in the simulator, energy model, or formatting shows up as a
//! readable diff against `tests/golden/figN.txt` instead of a silently
//! shifted paper claim.
//!
//! To regenerate after an *intentional* model change:
//!
//! ```text
//! cargo build -p pacq-bench --bins
//! for f in fig7 fig8 fig9 fig10 fig11 fig12 fig_is; do
//!     ./target/debug/$f > crates/bench/tests/golden/$f.txt
//! done
//! ```

use std::process::Command;

/// Runs a figure binary hermetically and compares stdout byte-for-byte
/// against the committed golden file.
fn assert_matches_golden(bin: &str, golden: &str) {
    let output = Command::new(bin)
        // The worker-count knob must not change output (the parallel
        // layer is bit-identical at any setting), but a malformed
        // inherited value would abort the run with a usage error.
        .env_remove("PACQ_JOBS")
        .output()
        .unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
    assert!(
        output.status.success(),
        "{bin} exited with {:?}\nstderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("figure stdout is UTF-8");
    if stdout != golden {
        // Locate the first diverging line so the failure reads like a
        // diff hunk, not two 1 KiB blobs.
        let line = stdout
            .lines()
            .zip(golden.lines())
            .take_while(|(a, b)| a == b)
            .count();
        panic!(
            "{bin}: stdout drifted from golden file at line {}\n  golden: {:?}\n  actual: {:?}\n\
             (regenerate per the header of crates/bench/tests/golden.rs if intentional)",
            line + 1,
            golden.lines().nth(line).unwrap_or("<eof>"),
            stdout.lines().nth(line).unwrap_or("<eof>"),
        );
    }
}

macro_rules! golden_test {
    ($name:ident, $bin:literal, $file:literal) => {
        #[test]
        fn $name() {
            assert_matches_golden(env!($bin), include_str!($file));
        }
    };
}

golden_test!(
    fig7_stdout_is_pinned,
    "CARGO_BIN_EXE_fig7",
    "golden/fig7.txt"
);
golden_test!(
    fig8_stdout_is_pinned,
    "CARGO_BIN_EXE_fig8",
    "golden/fig8.txt"
);
golden_test!(
    fig9_stdout_is_pinned,
    "CARGO_BIN_EXE_fig9",
    "golden/fig9.txt"
);
golden_test!(
    fig10_stdout_is_pinned,
    "CARGO_BIN_EXE_fig10",
    "golden/fig10.txt"
);
golden_test!(
    fig11_stdout_is_pinned,
    "CARGO_BIN_EXE_fig11",
    "golden/fig11.txt"
);
golden_test!(
    fig12_stdout_is_pinned,
    "CARGO_BIN_EXE_fig12",
    "golden/fig12.txt"
);
golden_test!(
    fig_is_stdout_is_pinned,
    "CARGO_BIN_EXE_fig_is",
    "golden/fig_is.txt"
);
golden_test!(
    fig_activity_stdout_is_pinned,
    "CARGO_BIN_EXE_fig_activity",
    "golden/fig_activity.txt"
);
