//! Criterion benchmarks of the analytic dataflow simulator and the
//! functional execution engines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pacq::{Architecture, GemmRunner, GemmShape, GroupShape, NumericsMode, Workload};
use pacq_fp16::WeightPrecision;
use pacq_quant::synth::SynthGenerator;
use std::hint::black_box;

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate");
    let runner = GemmRunner::new();
    for shape in [
        GemmShape::M16N16K16,
        GemmShape::new(16, 1024, 1024),
        GemmShape::new(16, 4096, 4096),
        GemmShape::new(16, 4096, 11008),
    ] {
        for arch in [
            Architecture::StandardDequant,
            Architecture::PackedK,
            Architecture::Pacq,
        ] {
            group.throughput(Throughput::Elements(shape.macs()));
            group.bench_with_input(
                BenchmarkId::new(format!("{arch:?}"), shape.to_string()),
                &shape,
                |bencher, &shape| {
                    let wl = Workload::new(shape, WeightPrecision::Int4);
                    bencher.iter(|| black_box(runner.analyze(arch, wl)))
                },
            );
        }
    }
    group.finish();
}

fn bench_functional_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("execute");
    let (m, n, k) = (8, 32, 128);
    let mut gen = SynthGenerator::new(3);
    let a = gen.llm_activations(m, k).to_f16();
    let w = gen.llm_weights(k, n);
    let runner = GemmRunner::new()
        .with_group(GroupShape::along_k(32))
        .with_numerics(NumericsMode::Wide);

    let p_k = runner
        .quantize_and_pack(&w, WeightPrecision::Int4, Architecture::PackedK)
        .expect("packs");
    let p_n = runner
        .quantize_and_pack(&w, WeightPrecision::Int4, Architecture::Pacq)
        .expect("packs");

    group.throughput(Throughput::Elements((m * n * k) as u64));
    group.bench_function("standard_dequant_m8n32k128", |bencher| {
        bencher.iter(|| black_box(runner.execute(Architecture::StandardDequant, &a, &p_k)))
    });
    group.bench_function("packed_k_m8n32k128", |bencher| {
        bencher.iter(|| black_box(runner.execute(Architecture::PackedK, &a, &p_k)))
    });
    group.bench_function("pacq_m8n32k128", |bencher| {
        bencher.iter(|| black_box(runner.execute(Architecture::Pacq, &a, &p_n)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_simulation, bench_functional_execution
}
criterion_main!(benches);
