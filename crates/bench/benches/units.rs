//! Criterion microbenchmarks of the arithmetic datapaths: the software
//! models themselves (how fast this simulator multiplies), complementing
//! the modeled-hardware numbers of Figures 8/9.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pacq_fp16::{
    softfloat, BaselineDpUnit, Fp16, Fp16Multiplier, Int4, NumericsMode, PackedWord,
    ParallelDpUnit, ParallelFpIntMultiplier, WeightPrecision,
};
use std::hint::black_box;

fn operands(n: usize) -> Vec<(Fp16, Fp16)> {
    (0..n)
        .map(|i| {
            let a = Fp16::from_bits((i as u16).wrapping_mul(24593).wrapping_add(7));
            let b = Fp16::from_bits((i as u16).wrapping_mul(40961).wrapping_add(3));
            (a, b)
        })
        .collect()
}

fn bench_multipliers(c: &mut Criterion) {
    let mut group = c.benchmark_group("multiplier");
    let ops = operands(1024);
    group.throughput(Throughput::Elements(ops.len() as u64));

    group.bench_function("softfloat_mul", |bencher| {
        bencher.iter(|| {
            let mut acc = 0u32;
            for &(a, b) in &ops {
                acc = acc.wrapping_add(softfloat::mul(a, b).to_bits() as u32);
            }
            black_box(acc)
        })
    });

    group.bench_function("datapath_fp16_mul", |bencher| {
        let unit = Fp16Multiplier::new();
        bencher.iter(|| {
            let mut acc = 0u32;
            for &(a, b) in &ops {
                acc = acc.wrapping_add(unit.product(a, b).to_bits() as u32);
            }
            black_box(acc)
        })
    });

    // One parallel multiply yields 4 products.
    group.throughput(Throughput::Elements(4 * ops.len() as u64));
    group.bench_function("parallel_fp_int_mul_int4", |bencher| {
        let unit = ParallelFpIntMultiplier::new(WeightPrecision::Int4);
        let packed = PackedWord::pack_int4([
            Int4::new(-8).unwrap(),
            Int4::new(-1).unwrap(),
            Int4::new(3).unwrap(),
            Int4::new(7).unwrap(),
        ]);
        bencher.iter(|| {
            let mut acc = 0u32;
            for &(a, _) in &ops {
                let t = unit.multiply(a, packed);
                for p in t.products() {
                    acc = acc.wrapping_add(p.to_bits() as u32);
                }
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_dp_units(c: &mut Criterion) {
    let mut group = c.benchmark_group("dp_unit");
    let a: Vec<Fp16> = (0..64)
        .map(|i| Fp16::from_f32((i % 13) as f32 * 0.25 - 1.5))
        .collect();
    let b: Vec<Fp16> = (0..64)
        .map(|i| Fp16::from_f32((i % 7) as f32 * 0.5 - 1.0))
        .collect();
    let words: Vec<PackedWord> = (0..64)
        .map(|i| {
            PackedWord::pack_int4(core::array::from_fn(|l| {
                Int4::new(((i + l) % 16) as i8 - 8).unwrap()
            }))
        })
        .collect();

    group.throughput(Throughput::Elements(64));
    group.bench_function("baseline_dp4_dot64", |bencher| {
        let dp = BaselineDpUnit::new(4).unwrap();
        bencher.iter(|| {
            let mut acc = 0f32;
            for k0 in (0..64).step_by(4) {
                acc = dp.dot_acc(acc, &a[k0..k0 + 4], &b[k0..k0 + 4]);
            }
            black_box(acc)
        })
    });

    group.throughput(Throughput::Elements(4 * 64));
    for mode in [NumericsMode::PaperRounded, NumericsMode::Wide] {
        group.bench_with_input(
            BenchmarkId::new("parallel_dp4_dot64", format!("{mode:?}")),
            &mode,
            |bencher, &mode| {
                let dp = ParallelDpUnit::new(4, 2, WeightPrecision::Int4)
                    .unwrap()
                    .with_numerics(mode);
                bencher.iter(|| black_box(dp.dot_packed(&a, &words)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_multipliers, bench_dp_units);
criterion_main!(benches);
