//! Criterion benchmarks of the quantization and packing pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pacq_fp16::WeightPrecision;
use pacq_quant::{synth::SynthGenerator, GroupShape, PackDim, PackedMatrix, RtnQuantizer};
use std::hint::black_box;

fn bench_quantize(c: &mut Criterion) {
    let mut group = c.benchmark_group("rtn_quantize");
    let w = SynthGenerator::new(1).llm_weights(1024, 512);
    group.throughput(Throughput::Elements((1024 * 512) as u64));
    for shape in [GroupShape::G128, GroupShape::G32X4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(shape.to_string()),
            &shape,
            |bencher, &shape| {
                let q = RtnQuantizer::new(WeightPrecision::Int4, shape);
                bencher.iter(|| black_box(q.quantize(&w)))
            },
        );
    }
    group.finish();
}

fn bench_pack(c: &mut Criterion) {
    let mut group = c.benchmark_group("pack");
    let w = SynthGenerator::new(2).llm_weights(1024, 512);
    let q = RtnQuantizer::new(WeightPrecision::Int4, GroupShape::G128)
        .quantize(&w)
        .unwrap();
    group.throughput(Throughput::Elements((1024 * 512) as u64));
    for dim in [PackDim::K, PackDim::N] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("P(B_4)_{dim}")),
            &dim,
            |bencher, &dim| bencher.iter(|| black_box(PackedMatrix::pack(&q, dim).unwrap())),
        );
    }
    group.bench_function("unpack_dequantize", |bencher| {
        let p = PackedMatrix::pack(&q, PackDim::N).unwrap();
        bencher.iter(|| black_box(p.unpack().dequantize()))
    });
    group.finish();
}

criterion_group!(benches, bench_quantize, bench_pack);
criterion_main!(benches);
