//! Criterion benchmarks of the parallel execution layer: the same
//! workload at `jobs = 1` vs `jobs = host`, for both the functional
//! GEMM flows and the analytic sweep fan-out.
//!
//! Shapes are Llama2-7B-derived. The functional GEMMs run a scaled-down
//! k/n so a sample finishes in milliseconds while still spanning many
//! parallel bands; the analytic sweep covers the full decoder block at
//! paper scale (it is model-based, not data-based, so it is cheap).
//!
//! On a multi-core host the `jobs=host` rows should show ≥2× the
//! throughput of `jobs=1` at 4+ threads. The comparison is *reported*,
//! not asserted — single-core CI containers run both configurations at
//! the same speed, and the bit-identity of the results is what the
//! equivalence suite (`crates/simt/tests/parallel_equivalence.rs`)
//! guarantees.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pacq::llama::{analyze_block, Model};
use pacq::{Architecture, GemmRunner, GroupShape, NumericsMode};
use pacq_fp16::WeightPrecision;
use pacq_quant::synth::SynthGenerator;
use std::hint::black_box;

/// Reconfigures the global pool (the shim allows it; see DESIGN.md §8).
fn set_jobs(n: usize) {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global()
        .expect("shim pool reconfigures");
}

fn host_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Functional execution at a Llama-7B-derived shape (m16, attention
/// projection column slice): m16 n256 k4096 keeps a sample around
/// milliseconds while the row/column tiling still exercises many bands.
fn bench_execute_jobs(c: &mut Criterion) {
    let (m, n, k) = (16, 256, 4096);
    let mut gen = SynthGenerator::new(7);
    let a = gen.llm_activations(m, k).to_f16();
    let w = gen.llm_weights(k, n);
    let runner = GemmRunner::new()
        .with_group(GroupShape::along_k(128))
        .with_numerics(NumericsMode::Wide);
    let p_n = runner
        .quantize_and_pack(&w, WeightPrecision::Int4, Architecture::Pacq)
        .expect("packs");
    let p_k = runner
        .quantize_and_pack(&w, WeightPrecision::Int4, Architecture::PackedK)
        .expect("packs");

    let mut group = c.benchmark_group("execute_jobs_m16n256k4096");
    group.throughput(Throughput::Elements((m * n * k) as u64));
    for jobs in [1, host_jobs()] {
        set_jobs(jobs);
        group.bench_with_input(BenchmarkId::new("pacq", jobs), &jobs, |bencher, _| {
            bencher.iter(|| black_box(runner.execute(Architecture::Pacq, &a, &p_n)))
        });
        group.bench_with_input(
            BenchmarkId::new("standard_dequant", jobs),
            &jobs,
            |bencher, _| {
                bencher.iter(|| black_box(runner.execute(Architecture::StandardDequant, &a, &p_k)))
            },
        );
    }
    set_jobs(0);
    group.finish();
}

/// Analytic sweep fan-out over the full Llama2-7B decoder block at
/// paper scale (batch 16, all three architectures per layer).
fn bench_sweep_jobs(c: &mut Criterion) {
    let runner = GemmRunner::new();
    let arches = [
        Architecture::StandardDequant,
        Architecture::PackedK,
        Architecture::Pacq,
    ];
    let mut group = c.benchmark_group("sweep_jobs_llama7b_block");
    // One "element" per analyzed (layer, architecture) point.
    group.throughput(Throughput::Elements(
        (Model::Llama2_7b.layers(16).len() * arches.len()) as u64,
    ));
    for jobs in [1, host_jobs()] {
        set_jobs(jobs);
        group.bench_with_input(BenchmarkId::from_parameter(jobs), &jobs, |bencher, _| {
            bencher.iter(|| {
                black_box(analyze_block(
                    &runner,
                    Model::Llama2_7b,
                    16,
                    WeightPrecision::Int4,
                    &arches,
                ))
            })
        });
    }
    set_jobs(0);
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_execute_jobs, bench_sweep_jobs
}
criterion_main!(benches);
