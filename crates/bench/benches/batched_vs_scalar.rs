//! Criterion benchmarks pinning the batched SoA backend against the
//! scalar reference on the functional GEMM flows.
//!
//! The batched kernels (`pacq_fp16::batch`) replace the per-element
//! softfloat classify/round chains with table conversions, branch-free
//! mask-arithmetic rounding and LUT lane products — the speedup here is
//! the whole point of the backend, while the equivalence suites pin
//! that the bits never change. Expect the `batched` rows at several
//! times the `scalar` throughput on every flow; `jobs` is held at 1 so
//! the ratio measures the kernels, not the thread pool.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pacq::{Architecture, Backend, GemmRunner, GroupShape, NumericsMode};
use pacq_fp16::WeightPrecision;
use pacq_quant::synth::SynthGenerator;
use std::hint::black_box;

/// Pins the pool at one worker so the backend ratio is kernel-only.
fn set_serial() {
    rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build_global()
        .expect("shim pool reconfigures");
}

/// One flow × precision × backend grid point at a Llama-7B-derived
/// column slice (m16 n256 k4096 — milliseconds per sample, many tiles).
fn bench_backends(c: &mut Criterion) {
    set_serial();
    let (m, n, k) = (16, 256, 4096);
    let mut gen = SynthGenerator::new(7);
    let a = gen.llm_activations(m, k).to_f16();
    let w = gen.llm_weights(k, n);

    let mut group = c.benchmark_group("batched_vs_scalar_m16n256k4096");
    group.throughput(Throughput::Elements((m * n * k) as u64));
    for precision in [WeightPrecision::Int4, WeightPrecision::Int2] {
        for (arch, tag) in [
            (Architecture::Pacq, "pacq"),
            (Architecture::PackedK, "packedk"),
            (Architecture::StandardDequant, "std"),
        ] {
            let base = GemmRunner::new()
                .with_group(GroupShape::along_k(128))
                .with_numerics(NumericsMode::PaperRounded);
            let packed = base.quantize_and_pack(&w, precision, arch).expect("packs");
            for backend in Backend::ALL {
                let runner = base.clone().with_backend(backend);
                group.bench_with_input(
                    BenchmarkId::new(format!("{tag}_{precision}"), backend),
                    &backend,
                    |bencher, _| bencher.iter(|| black_box(runner.execute(arch, &a, &packed))),
                );
            }
        }
    }
    group.finish();
    rayon::ThreadPoolBuilder::new()
        .num_threads(0)
        .build_global()
        .expect("shim pool restores");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_backends
}
criterion_main!(benches);
