//! Property-based tests for the event-driven pipeline and the analytic
//! engines' mutual consistency.

use pacq_fp16::WeightPrecision;
use pacq_quant::GroupShape;
use pacq_simt::pipeline::{FetchKind, ScheduleStep};
use pacq_simt::{
    octet_schedule, simulate, Architecture, GemmShape, OctetPipeline, SmConfig, Workload,
};
use proptest::prelude::*;

fn arb_step() -> impl Strategy<Value = ScheduleStep> {
    (
        prop::collection::vec(
            prop_oneof![
                (1u64..16).prop_map(|e| FetchKind::ATile { elements: e }),
                (1u64..8).prop_map(|r| FetchKind::BTile {
                    reads: r,
                    bits: r * 16
                }),
                (1u64..16).prop_map(|e| FetchKind::CWrite { elements: e }),
            ],
            0..6,
        ),
        0u64..4,
        1u64..5,
        0u64..5,
    )
        .prop_map(
            |(fetches, issues, issue_interval, a_evictions)| ScheduleStep {
                fetches,
                issues,
                issue_interval,
                a_evictions,
            },
        )
}

proptest! {
    /// Appending steps never shortens the replayed schedule, and traffic
    /// accumulates exactly.
    #[test]
    fn pipeline_cycles_monotone_in_schedule(
        steps in prop::collection::vec(arb_step(), 1..40),
    ) {
        let pipe = OctetPipeline::new();
        let full = pipe.run(&steps);
        let prefix = pipe.run(&steps[..steps.len() - 1]);
        prop_assert!(full.cycles >= prefix.cycles);
        prop_assert!(full.fetch_instructions >= prefix.fetch_instructions);
        prop_assert!(full.rf.total_accesses() >= prefix.rf.total_accesses());
    }

    /// More fetch ports never make a schedule slower.
    #[test]
    fn more_ports_never_hurt(steps in prop::collection::vec(arb_step(), 1..40)) {
        let slow = OctetPipeline::new().with_fetch_ports(1).run(&steps);
        let fast = OctetPipeline::new().with_fetch_ports(4).run(&steps);
        prop_assert!(fast.cycles <= slow.cycles);
        prop_assert!(fast.fetch_stall_cycles <= slow.fetch_stall_cycles);
        // Traffic is schedule-determined, not port-determined.
        prop_assert_eq!(fast.rf, slow.rf);
    }

    /// The analytic engine's RF counts are invariant to the machine's
    /// duplication knob (it only changes timing), for every architecture.
    #[test]
    fn rf_traffic_independent_of_duplication(
        dup in prop::sample::select(vec![1usize, 2, 4]),
        ni in 1usize..4,
        ki in 1usize..4,
    ) {
        let shape = GemmShape::new(16, ni * 16, ki * 16);
        let group = GroupShape::along_k(ki * 16);
        for arch in [
            Architecture::StandardDequant,
            Architecture::PackedK,
            Architecture::InputStationary,
            Architecture::Pacq,
        ] {
            let mut a = SmConfig::volta_like();
            a.adder_tree_duplication = dup;
            let mut b = SmConfig::volta_like();
            b.adder_tree_duplication = 2;
            let wl = Workload::new(shape, WeightPrecision::Int4);
            let ra = simulate(arch, wl, &a, group).expect("valid config");
            let rb = simulate(arch, wl, &b, group).expect("valid config");
            prop_assert_eq!(ra.rf, rb.rf, "{:?}", arch);
            prop_assert_eq!(ra.fetch_instructions, rb.fetch_instructions);
        }
    }

    /// Event and analytic engines agree on RF traffic for every machine
    /// width/duplication combination (generalizing the unit test).
    #[test]
    fn event_analytic_agreement_random_machines(
        width in prop::sample::select(vec![4usize, 8, 16]),
        dup in prop::sample::select(vec![1usize, 2, 4]),
        precision in prop::sample::select(vec![WeightPrecision::Int4, WeightPrecision::Int2]),
    ) {
        let mut cfg = SmConfig::volta_like();
        cfg.dp_width = width;
        cfg.adder_tree_duplication = dup;
        for arch in [
            Architecture::StandardDequant,
            Architecture::PackedK,
            Architecture::InputStationary,
            Architecture::Pacq,
        ] {
            let schedule = octet_schedule(arch, precision, &cfg);
            let t = OctetPipeline::new().run(&schedule);
            let a = simulate(
                arch,
                Workload::new(GemmShape::M16N16K16, precision),
                &cfg,
                GroupShape::along_k(16),
            )
            .expect("valid config");
            prop_assert_eq!(t.rf.a_reads * 4, a.rf.a_reads, "{:?} A", arch);
            prop_assert_eq!(t.rf.b_reads * 4, a.rf.b_reads, "{:?} B", arch);
            prop_assert_eq!(t.rf.c_writes * 4, a.rf.c_writes, "{:?} C", arch);
        }
    }
}
