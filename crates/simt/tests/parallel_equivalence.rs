//! Bit-identity of every parallelized path under different job counts.
//!
//! The parallel execution layer promises that fanning work out over the
//! rayon pool never changes a single output bit (DESIGN.md §9): only
//! whole output rows / columns / sweep points are distributed, and the
//! per-element accumulation order is untouched. This suite pins that
//! contract for the three functional GEMM flows, the f64 oracle, and
//! the RTN / GPTQ / AWQ quantizers by running each computation at
//! `jobs = 1` and `jobs = 4` and comparing raw f32 bit patterns.
//!
//! The job count is process-global, so every test serializes on a
//! shared lock before touching the pool and restores the host default
//! afterwards.

use pacq_fp16::{NumericsMode, WeightPrecision};
use pacq_quant::{
    awq::AwqScaler, gptq::GptqQuantizer, synth::SynthGenerator, GroupShape, MatrixF32, PackDim,
    PackedMatrix, QuantizedMatrix, RtnQuantizer,
};
use pacq_simt::{execute, reference, Architecture};
use std::sync::{Mutex, MutexGuard};

/// Serializes pool reconfiguration across the test binary's threads.
fn pool_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Restores the host-default pool even if a comparison panics.
struct PoolGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for PoolGuard {
    fn drop(&mut self) {
        set_jobs(0);
    }
}

fn set_jobs(n: usize) {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global()
        .expect("the shim pool reconfigures freely");
}

/// Runs `f` at `jobs = 1` and `jobs = 4` and returns both results.
fn at_1_and_4<T>(f: impl Fn() -> T) -> (T, T) {
    let _guard = PoolGuard { _lock: pool_lock() };
    set_jobs(1);
    let serial = f();
    set_jobs(4);
    let parallel = f();
    (serial, parallel)
}

/// Asserts two f32 matrices agree to the last bit.
fn assert_bits_eq(serial: &MatrixF32, parallel: &MatrixF32, what: &str) {
    assert_eq!(serial.rows(), parallel.rows(), "{what}: row mismatch");
    assert_eq!(serial.cols(), parallel.cols(), "{what}: col mismatch");
    for r in 0..serial.rows() {
        for c in 0..serial.cols() {
            let (s, p) = (serial.get(r, c), parallel.get(r, c));
            assert_eq!(
                s.to_bits(),
                p.to_bits(),
                "{what}: ({r},{c}) diverges: jobs=1 {s} vs jobs=4 {p}"
            );
        }
    }
}

/// Asserts two quantization artifacts agree exactly (codes, raw scale
/// bits, zero points).
fn assert_artifacts_eq(serial: &QuantizedMatrix, parallel: &QuantizedMatrix, what: &str) {
    assert_eq!(serial.codes(), parallel.codes(), "{what}: codes diverge");
    let sb: Vec<u32> = serial.scales().iter().map(|s| s.to_bits()).collect();
    let pb: Vec<u32> = parallel.scales().iter().map(|s| s.to_bits()).collect();
    assert_eq!(sb, pb, "{what}: scale bits diverge");
    assert_eq!(
        serial.zero_points(),
        parallel.zero_points(),
        "{what}: zero points diverge"
    );
}

// m = 5 deliberately avoids the band size dividing the row count, so
// the last parallel band is ragged.
const M: usize = 5;
const N: usize = 16;
const K: usize = 64;

fn pack_for(arch: Architecture) -> PackDim {
    match arch {
        Architecture::PackedK => PackDim::K,
        _ => PackDim::N,
    }
}

#[test]
fn execute_is_bit_identical_across_job_counts() {
    for arch in [
        Architecture::StandardDequant,
        Architecture::PackedK,
        Architecture::Pacq,
    ] {
        for precision in [WeightPrecision::Int4, WeightPrecision::Int2] {
            for numerics in [NumericsMode::PaperRounded, NumericsMode::Wide] {
                let mut g = SynthGenerator::new(77);
                let a = g.llm_activations(M, K).to_f16();
                let w = g.llm_weights(K, N);
                let q = RtnQuantizer::new(precision, GroupShape::along_k(32))
                    .quantize(&w)
                    .expect("quantizes");
                let p = PackedMatrix::pack(&q, pack_for(arch)).expect("packs");
                let (serial, parallel) =
                    at_1_and_4(|| execute(arch, &a, &p, numerics).expect("executes"));
                assert_bits_eq(
                    &serial,
                    &parallel,
                    &format!("execute({arch:?}, {precision}, {numerics:?})"),
                );
            }
        }
    }
}

#[test]
fn reference_oracle_is_bit_identical_across_job_counts() {
    let mut g = SynthGenerator::new(78);
    let a = g.llm_activations(M, K).to_f16();
    let w = g.llm_weights(K, N);
    let q = RtnQuantizer::new(WeightPrecision::Int4, GroupShape::along_k(32))
        .quantize(&w)
        .expect("quantizes");
    let p = PackedMatrix::pack(&q, PackDim::N).expect("packs");
    let (serial, parallel) = at_1_and_4(|| reference(&a, &p));
    assert_bits_eq(&serial, &parallel, "reference");
}

#[test]
fn matmul_is_bit_identical_across_job_counts() {
    let mut g = SynthGenerator::new(79);
    let lhs = g.llm_activations(M, K);
    let rhs = g.llm_weights(K, N);
    let (serial, parallel) = at_1_and_4(|| lhs.matmul(&rhs));
    assert_bits_eq(&serial, &parallel, "matmul");
}

#[test]
fn rtn_artifacts_are_bit_identical_across_job_counts() {
    let mut g = SynthGenerator::new(80);
    let w = g.llm_weights(K, N);
    for precision in [WeightPrecision::Int4, WeightPrecision::Int2] {
        for (name, quantizer) in [
            (
                "symmetric",
                RtnQuantizer::new(precision, GroupShape::along_k(32)),
            ),
            (
                "asymmetric",
                RtnQuantizer::asymmetric(precision, GroupShape::along_k(32)),
            ),
        ] {
            let (serial, parallel) = at_1_and_4(|| quantizer.quantize(&w).expect("quantizes"));
            assert_artifacts_eq(&serial, &parallel, &format!("rtn/{name}/{precision}"));
        }
    }
}

#[test]
fn gptq_artifacts_are_bit_identical_across_job_counts() {
    let mut g = SynthGenerator::new(81);
    let w = g.llm_weights(K, N);
    let calibration = g.llm_activations(8, K);
    let quantizer =
        GptqQuantizer::new(WeightPrecision::Int4, GroupShape::along_k(32)).expect("k-only group");
    let (serial, parallel) = at_1_and_4(|| {
        quantizer
            .quantize(&w, &calibration)
            .expect("well-conditioned synthetic Hessian")
    });
    assert_artifacts_eq(&serial, &parallel, "gptq");
}

#[test]
fn awq_search_is_bit_identical_across_job_counts() {
    let mut g = SynthGenerator::new(82);
    let w = g.llm_weights(K, N);
    let activations = g.llm_activations(8, K);
    let scaler = AwqScaler::new();
    let (serial, parallel) = at_1_and_4(|| {
        scaler
            .search(
                &w,
                &activations,
                WeightPrecision::Int4,
                GroupShape::along_k(32),
            )
            .expect("searches")
    });
    assert_eq!(
        serial.alpha.to_bits(),
        parallel.alpha.to_bits(),
        "awq: chosen α diverges"
    );
    assert_eq!(
        serial.output_rel_err.to_bits(),
        parallel.output_rel_err.to_bits(),
        "awq: output error diverges"
    );
    let sb: Vec<u32> = serial.channel_scales.iter().map(|s| s.to_bits()).collect();
    let pb: Vec<u32> = parallel
        .channel_scales
        .iter()
        .map(|s| s.to_bits())
        .collect();
    assert_eq!(sb, pb, "awq: channel scale bits diverge");
    assert_artifacts_eq(&serial.quantized, &parallel.quantized, "awq/quantized");
}
