//! Bit-identity of every parallelized path under different job counts.
//!
//! The parallel execution layer promises that fanning work out over the
//! rayon pool never changes a single output bit (DESIGN.md §9): only
//! whole output rows / columns / sweep points are distributed, and the
//! per-element accumulation order is untouched. This suite pins that
//! contract for the three functional GEMM flows, the f64 oracle, and
//! the RTN / GPTQ / AWQ quantizers by running each computation at
//! `jobs = 1` and `jobs = 4` and comparing raw f32 bit patterns.
//!
//! The job count is process-global, so every test serializes on a
//! shared lock before touching the pool and restores the host default
//! afterwards.
//!
//! The suite additionally pins the *backend* contract: the batched SoA
//! kernels (`Backend::Batched`) must agree with the scalar reference to
//! the last bit, at every job count — a three-way scalar ≡ rayon ≡
//! batched check over the flows, precisions, numerics modes, randomized
//! shapes/group sizes, and the fp16 classify/round frontier inputs
//! (subnormals, ±∞, NaN, carry-to-infinity magnitudes).

use pacq_fp16::{Backend, Fp16, NumericsMode, WeightPrecision};
use pacq_quant::{
    awq::AwqScaler, gptq::GptqQuantizer, synth::SynthGenerator, GroupShape, MatrixF16, MatrixF32,
    PackDim, PackedMatrix, QuantizedMatrix, RtnQuantizer,
};
use pacq_simt::{execute, execute_with_backend, reference, Architecture};
use std::sync::{Mutex, MutexGuard};

/// Serializes pool reconfiguration across the test binary's threads.
fn pool_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Restores the host-default pool even if a comparison panics.
struct PoolGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for PoolGuard {
    fn drop(&mut self) {
        set_jobs(0);
    }
}

fn set_jobs(n: usize) {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global()
        .expect("the shim pool reconfigures freely");
}

/// Runs `f` at `jobs = 1` and `jobs = 4` and returns both results.
fn at_1_and_4<T>(f: impl Fn() -> T) -> (T, T) {
    let _guard = PoolGuard { _lock: pool_lock() };
    set_jobs(1);
    let serial = f();
    set_jobs(4);
    let parallel = f();
    (serial, parallel)
}

/// Asserts two f32 matrices agree to the last bit.
fn assert_bits_eq(serial: &MatrixF32, parallel: &MatrixF32, what: &str) {
    assert_eq!(serial.rows(), parallel.rows(), "{what}: row mismatch");
    assert_eq!(serial.cols(), parallel.cols(), "{what}: col mismatch");
    for r in 0..serial.rows() {
        for c in 0..serial.cols() {
            let (s, p) = (serial.get(r, c), parallel.get(r, c));
            assert_eq!(
                s.to_bits(),
                p.to_bits(),
                "{what}: ({r},{c}) diverges: jobs=1 {s} vs jobs=4 {p}"
            );
        }
    }
}

/// Asserts two quantization artifacts agree exactly (codes, raw scale
/// bits, zero points).
fn assert_artifacts_eq(serial: &QuantizedMatrix, parallel: &QuantizedMatrix, what: &str) {
    assert_eq!(serial.codes(), parallel.codes(), "{what}: codes diverge");
    let sb: Vec<u32> = serial.scales().iter().map(|s| s.to_bits()).collect();
    let pb: Vec<u32> = parallel.scales().iter().map(|s| s.to_bits()).collect();
    assert_eq!(sb, pb, "{what}: scale bits diverge");
    assert_eq!(
        serial.zero_points(),
        parallel.zero_points(),
        "{what}: zero points diverge"
    );
}

// m = 5 deliberately avoids the band size dividing the row count, so
// the last parallel band is ragged.
const M: usize = 5;
const N: usize = 16;
const K: usize = 64;

fn pack_for(arch: Architecture) -> PackDim {
    match arch {
        Architecture::PackedK | Architecture::InputStationary => PackDim::K,
        _ => PackDim::N,
    }
}

#[test]
fn execute_is_bit_identical_across_job_counts() {
    for arch in [
        Architecture::StandardDequant,
        Architecture::PackedK,
        Architecture::InputStationary,
        Architecture::Pacq,
    ] {
        for precision in [WeightPrecision::Int4, WeightPrecision::Int2] {
            for numerics in [NumericsMode::PaperRounded, NumericsMode::Wide] {
                let mut g = SynthGenerator::new(77);
                let a = g.llm_activations(M, K).to_f16();
                let w = g.llm_weights(K, N);
                let q = RtnQuantizer::new(precision, GroupShape::along_k(32))
                    .quantize(&w)
                    .expect("quantizes");
                let p = PackedMatrix::pack(&q, pack_for(arch)).expect("packs");
                let (serial, parallel) =
                    at_1_and_4(|| execute(arch, &a, &p, numerics).expect("executes"));
                assert_bits_eq(
                    &serial,
                    &parallel,
                    &format!("execute({arch:?}, {precision}, {numerics:?})"),
                );
            }
        }
    }
}

#[test]
fn reference_oracle_is_bit_identical_across_job_counts() {
    let mut g = SynthGenerator::new(78);
    let a = g.llm_activations(M, K).to_f16();
    let w = g.llm_weights(K, N);
    let q = RtnQuantizer::new(WeightPrecision::Int4, GroupShape::along_k(32))
        .quantize(&w)
        .expect("quantizes");
    let p = PackedMatrix::pack(&q, PackDim::N).expect("packs");
    let (serial, parallel) = at_1_and_4(|| reference(&a, &p));
    assert_bits_eq(&serial, &parallel, "reference");
}

#[test]
fn matmul_is_bit_identical_across_job_counts() {
    let mut g = SynthGenerator::new(79);
    let lhs = g.llm_activations(M, K);
    let rhs = g.llm_weights(K, N);
    let (serial, parallel) = at_1_and_4(|| lhs.matmul(&rhs));
    assert_bits_eq(&serial, &parallel, "matmul");
}

#[test]
fn rtn_artifacts_are_bit_identical_across_job_counts() {
    let mut g = SynthGenerator::new(80);
    let w = g.llm_weights(K, N);
    for precision in [WeightPrecision::Int4, WeightPrecision::Int2] {
        for (name, quantizer) in [
            (
                "symmetric",
                RtnQuantizer::new(precision, GroupShape::along_k(32)),
            ),
            (
                "asymmetric",
                RtnQuantizer::asymmetric(precision, GroupShape::along_k(32)),
            ),
        ] {
            let (serial, parallel) = at_1_and_4(|| quantizer.quantize(&w).expect("quantizes"));
            assert_artifacts_eq(&serial, &parallel, &format!("rtn/{name}/{precision}"));
        }
    }
}

#[test]
fn gptq_artifacts_are_bit_identical_across_job_counts() {
    let mut g = SynthGenerator::new(81);
    let w = g.llm_weights(K, N);
    let calibration = g.llm_activations(8, K);
    let quantizer =
        GptqQuantizer::new(WeightPrecision::Int4, GroupShape::along_k(32)).expect("k-only group");
    let (serial, parallel) = at_1_and_4(|| {
        quantizer
            .quantize(&w, &calibration)
            .expect("well-conditioned synthetic Hessian")
    });
    assert_artifacts_eq(&serial, &parallel, "gptq");
}

#[test]
fn awq_search_is_bit_identical_across_job_counts() {
    let mut g = SynthGenerator::new(82);
    let w = g.llm_weights(K, N);
    let activations = g.llm_activations(8, K);
    let scaler = AwqScaler::new();
    let (serial, parallel) = at_1_and_4(|| {
        scaler
            .search(
                &w,
                &activations,
                WeightPrecision::Int4,
                GroupShape::along_k(32),
            )
            .expect("searches")
    });
    assert_eq!(
        serial.alpha.to_bits(),
        parallel.alpha.to_bits(),
        "awq: chosen α diverges"
    );
    assert_eq!(
        serial.output_rel_err.to_bits(),
        parallel.output_rel_err.to_bits(),
        "awq: output error diverges"
    );
    let sb: Vec<u32> = serial.channel_scales.iter().map(|s| s.to_bits()).collect();
    let pb: Vec<u32> = parallel
        .channel_scales
        .iter()
        .map(|s| s.to_bits())
        .collect();
    assert_eq!(sb, pb, "awq: channel scale bits diverge");
    assert_artifacts_eq(&serial.quantized, &parallel.quantized, "awq/quantized");
}

/// Asserts two f32 matrices agree to the last bit, except that a NaN
/// may face a NaN with a different payload: once an f32/f64 accumulator
/// goes NaN, the surviving payload depends on float-add operand order
/// the compiler is free to commute, so payloads are outside the
/// backend contract (finite values are never exempted).
fn assert_bits_eq_nan_loose(left: &MatrixF32, right: &MatrixF32, what: &str) {
    assert_eq!(left.rows(), right.rows(), "{what}: row mismatch");
    assert_eq!(left.cols(), right.cols(), "{what}: col mismatch");
    for r in 0..left.rows() {
        for c in 0..left.cols() {
            let (l, p) = (left.get(r, c), right.get(r, c));
            assert!(
                l.to_bits() == p.to_bits() || (l.is_nan() && p.is_nan()),
                "{what}: ({r},{c}) diverges: {l} vs {p}"
            );
        }
    }
}

/// The tentpole contract: scalar ≡ rayon ≡ batched. Every flow ×
/// precision × numerics mode runs under both backends at `jobs = 1`
/// and `jobs = 4`; all four results must carry identical bits.
#[test]
fn batched_backend_is_bit_identical_to_scalar_across_job_counts() {
    for arch in [
        Architecture::StandardDequant,
        Architecture::PackedK,
        Architecture::InputStationary,
        Architecture::Pacq,
    ] {
        for precision in [WeightPrecision::Int4, WeightPrecision::Int2] {
            for numerics in [NumericsMode::PaperRounded, NumericsMode::Wide] {
                let mut g = SynthGenerator::new(83);
                let a = g.llm_activations(M, K).to_f16();
                let w = g.llm_weights(K, N);
                let q = RtnQuantizer::new(precision, GroupShape::along_k(32))
                    .quantize(&w)
                    .expect("quantizes");
                let p = PackedMatrix::pack(&q, pack_for(arch)).expect("packs");
                let what = format!("execute({arch:?}, {precision}, {numerics:?})");
                let run = |backend| {
                    at_1_and_4(|| {
                        execute_with_backend(arch, &a, &p, numerics, backend).expect("executes")
                    })
                };
                let (scalar_1, scalar_4) = run(Backend::Scalar);
                let (batched_1, batched_4) = run(Backend::Batched);
                assert_bits_eq(&scalar_1, &scalar_4, &format!("{what} scalar jobs"));
                assert_bits_eq(&batched_1, &batched_4, &format!("{what} batched jobs"));
                assert_bits_eq(&scalar_1, &batched_1, &format!("{what} backends"));
            }
        }
    }
}

/// Three-way equivalence over randomized shapes, precisions, group
/// sizes and numerics modes — the property the backend selector relies
/// on for every sweep point.
#[test]
fn three_way_equivalence_over_randomized_shapes() {
    let mut state = 0x2545f4914f6cdd1du64;
    let mut next = move |bound: usize| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 33) as usize % bound
    };
    for trial in 0..8 {
        let m = 1 + next(8);
        let k = [32usize, 64, 128][next(3)];
        let n = [16usize, 32][next(2)];
        let group = [16usize, 32][next(2)].min(k);
        let precision = [WeightPrecision::Int4, WeightPrecision::Int2][next(2)];
        let numerics = [NumericsMode::PaperRounded, NumericsMode::Wide][next(2)];
        let mut g = SynthGenerator::new(900 + trial);
        let a = g.llm_activations(m, k).to_f16();
        let w = g.llm_weights(k, n);
        let q = RtnQuantizer::new(precision, GroupShape::along_k(group))
            .quantize(&w)
            .expect("quantizes");
        for arch in [
            Architecture::StandardDequant,
            Architecture::PackedK,
            Architecture::InputStationary,
            Architecture::Pacq,
        ] {
            let p = PackedMatrix::pack(&q, pack_for(arch)).expect("packs");
            let what =
                format!("trial {trial}: {arch:?} m{m} n{n} k{k} g{group} {precision} {numerics:?}");
            let run = |backend| {
                at_1_and_4(|| {
                    execute_with_backend(arch, &a, &p, numerics, backend).expect("executes")
                })
            };
            let (scalar_1, scalar_4) = run(Backend::Scalar);
            let (batched_1, batched_4) = run(Backend::Batched);
            assert_bits_eq(&scalar_1, &scalar_4, &format!("{what} scalar jobs"));
            assert_bits_eq(&batched_1, &batched_4, &format!("{what} batched jobs"));
            assert_bits_eq(&scalar_1, &batched_1, &format!("{what} backends"));
        }
    }
}

/// Three-way equivalence on activations sitting on every fp16
/// classify/round frontier (the same families as the fp16 RNE frontier
/// suite): subnormals, ±max-finite carry-to-infinity magnitudes, ±∞
/// and NaN. Weights stay quantized (their domain is the packed codes),
/// the activations carry the hostile bits.
#[test]
fn three_way_equivalence_survives_frontier_activations() {
    let frontier: Vec<u16> = vec![
        0x0001, 0x8001, // min subnormals
        0x03ff, 0x83ff, // max subnormals
        0x0400, 0x8400, // min normals
        0x3c00, 0xbc00, // ±1
        0x7bff, 0xfbff, // ±max finite (carry-to-infinity inputs)
        0x7a00, 0xfa00, // large magnitudes that overflow mid-sum
        0x7c00, 0xfc00, // ±inf
        0x7e00, 0xfe77, // NaNs
        0x0000, 0x8000, // ±0
    ];
    let (m, n, k) = (3usize, 16, 32);
    let a = MatrixF16::from_vec(
        m,
        k,
        (0..m * k)
            .map(|i| Fp16::from_bits(frontier[(i * 7 + i / k) % frontier.len()]))
            .collect(),
    );
    let w = SynthGenerator::new(84).llm_weights(k, n);
    for precision in [WeightPrecision::Int4, WeightPrecision::Int2] {
        for numerics in [NumericsMode::PaperRounded, NumericsMode::Wide] {
            let q = RtnQuantizer::new(precision, GroupShape::along_k(16))
                .quantize(&w)
                .expect("quantizes");
            for arch in [
                Architecture::StandardDequant,
                Architecture::PackedK,
                Architecture::InputStationary,
                Architecture::Pacq,
            ] {
                let p = PackedMatrix::pack(&q, pack_for(arch)).expect("packs");
                let what = format!("frontier {arch:?} {precision} {numerics:?}");
                let run = |backend| {
                    at_1_and_4(|| {
                        execute_with_backend(arch, &a, &p, numerics, backend).expect("executes")
                    })
                };
                let (scalar_1, scalar_4) = run(Backend::Scalar);
                let (batched_1, batched_4) = run(Backend::Batched);
                assert_bits_eq_nan_loose(&scalar_1, &scalar_4, &format!("{what} scalar jobs"));
                assert_bits_eq_nan_loose(&batched_1, &batched_4, &format!("{what} batched jobs"));
                assert_bits_eq_nan_loose(&scalar_1, &batched_1, &format!("{what} backends"));
            }
        }
    }
}
