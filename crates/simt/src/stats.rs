//! Access and timing statistics collected by the dataflow engines.

use core::ops::{Add, AddAssign};

/// Per-operand register-file traffic (element-granularity reads from the
/// register file into the tensor-core operand buffers, plus partial-sum
/// writebacks). These are the counts Figure 7(a) compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RfTraffic {
    /// Activation (A) element reads.
    pub a_reads: u64,
    /// Weight (B) reads — packed words count as one read each.
    pub b_reads: u64,
    /// Partial-sum (C) reads.
    pub c_reads: u64,
    /// Partial-sum / output (C) writes.
    pub c_writes: u64,
    /// Bits moved by A reads.
    pub a_bits: u64,
    /// Bits moved by B reads.
    pub b_bits: u64,
    /// Bits moved by C accesses.
    pub c_bits: u64,
}

impl RfTraffic {
    /// Total access count (the Figure 7(a) metric).
    pub fn total_accesses(&self) -> u64 {
        self.a_reads + self.b_reads + self.c_reads + self.c_writes
    }

    /// Total bits moved.
    pub fn total_bits(&self) -> u64 {
        self.a_bits + self.b_bits + self.c_bits
    }
}

impl Add for RfTraffic {
    type Output = RfTraffic;
    fn add(self, rhs: RfTraffic) -> RfTraffic {
        RfTraffic {
            a_reads: self.a_reads + rhs.a_reads,
            b_reads: self.b_reads + rhs.b_reads,
            c_reads: self.c_reads + rhs.c_reads,
            c_writes: self.c_writes + rhs.c_writes,
            a_bits: self.a_bits + rhs.a_bits,
            b_bits: self.b_bits + rhs.b_bits,
            c_bits: self.c_bits + rhs.c_bits,
        }
    }
}

impl AddAssign for RfTraffic {
    fn add_assign(&mut self, rhs: RfTraffic) {
        *self = *self + rhs;
    }
}

/// Traffic at one memory level in (accesses, bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LevelTraffic {
    /// Read accesses.
    pub reads: u64,
    /// Write accesses.
    pub writes: u64,
    /// Bits read.
    pub read_bits: u64,
    /// Bits written.
    pub write_bits: u64,
}

impl Add for LevelTraffic {
    type Output = LevelTraffic;
    fn add(self, rhs: LevelTraffic) -> LevelTraffic {
        LevelTraffic {
            reads: self.reads + rhs.reads,
            writes: self.writes + rhs.writes,
            read_bits: self.read_bits + rhs.read_bits,
            write_bits: self.write_bits + rhs.write_bits,
        }
    }
}

impl AddAssign for LevelTraffic {
    fn add_assign(&mut self, rhs: LevelTraffic) {
        *self = *self + rhs;
    }
}

/// General-core (non-tensor-core) operation counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GeneralCoreOps {
    /// Weight unpack operations (StandardDequant).
    pub unpack_ops: u64,
    /// Weight dequantization multiplies (StandardDequant).
    pub dequant_ops: u64,
    /// Inline INT→FP16 conversions inside the tensor core (PackedK).
    pub inline_converts: u64,
    /// Eq. (1) `− offset·ΣA` fixups (PacQ; Figure 6 ①–②).
    pub offset_fixups: u64,
    /// Quantization-scale applications (Figure 6 ③).
    pub scale_applies: u64,
    /// Quantization-scale fetch events (what `g[n,k]` groups reduce).
    pub scale_fetches: u64,
}

impl Add for GeneralCoreOps {
    type Output = GeneralCoreOps;
    fn add(self, rhs: GeneralCoreOps) -> GeneralCoreOps {
        GeneralCoreOps {
            unpack_ops: self.unpack_ops + rhs.unpack_ops,
            dequant_ops: self.dequant_ops + rhs.dequant_ops,
            inline_converts: self.inline_converts + rhs.inline_converts,
            offset_fixups: self.offset_fixups + rhs.offset_fixups,
            scale_applies: self.scale_applies + rhs.scale_applies,
            scale_fetches: self.scale_fetches + rhs.scale_fetches,
        }
    }
}

impl AddAssign for GeneralCoreOps {
    fn add_assign(&mut self, rhs: GeneralCoreOps) {
        *self = *self + rhs;
    }
}

/// Full statistics of one simulated GEMM.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GemmStats {
    /// Register-file traffic (Figure 7(a)).
    pub rf: RfTraffic,
    /// L1 traffic.
    pub l1: LevelTraffic,
    /// DRAM traffic.
    pub dram: LevelTraffic,
    /// Operand-buffer fills.
    pub buffer_fills: u64,
    /// Operand-buffer evictions forced before reuse was exhausted
    /// (the Figure 4(b) pathology of k-packing).
    pub buffer_evictions: u64,
    /// Operand fetch instructions issued (Figure 4(a) counts these).
    pub fetch_instructions: u64,
    /// Cycles the tensor cores are busy.
    pub tc_cycles: u64,
    /// Cycles the general core spends on unpack/dequant/fixup work that
    /// does not overlap the tensor cores.
    pub general_cycles: u64,
    /// End-to-end cycles.
    pub total_cycles: u64,
    /// General-core operation counts.
    pub ops: GeneralCoreOps,
}

impl GemmStats {
    /// End-to-end latency in seconds at the given clock.
    pub fn latency_s(&self, clock_hz: f64) -> f64 {
        self.total_cycles as f64 / clock_hz
    }
}

impl Add for GemmStats {
    type Output = GemmStats;
    fn add(self, rhs: GemmStats) -> GemmStats {
        GemmStats {
            rf: self.rf + rhs.rf,
            l1: self.l1 + rhs.l1,
            dram: self.dram + rhs.dram,
            buffer_fills: self.buffer_fills + rhs.buffer_fills,
            buffer_evictions: self.buffer_evictions + rhs.buffer_evictions,
            fetch_instructions: self.fetch_instructions + rhs.fetch_instructions,
            tc_cycles: self.tc_cycles + rhs.tc_cycles,
            general_cycles: self.general_cycles + rhs.general_cycles,
            total_cycles: self.total_cycles + rhs.total_cycles,
            ops: self.ops + rhs.ops,
        }
    }
}

impl AddAssign for GemmStats {
    fn add_assign(&mut self, rhs: GemmStats) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_totals() {
        let t = RfTraffic {
            a_reads: 10,
            b_reads: 5,
            c_reads: 3,
            c_writes: 2,
            a_bits: 160,
            b_bits: 80,
            c_bits: 80,
        };
        assert_eq!(t.total_accesses(), 20);
        assert_eq!(t.total_bits(), 320);
    }

    #[test]
    fn addition_is_componentwise() {
        let mut a = GemmStats::default();
        a.rf.a_reads = 1;
        a.tc_cycles = 10;
        let mut b = GemmStats::default();
        b.rf.a_reads = 2;
        b.tc_cycles = 5;
        let c = a + b;
        assert_eq!(c.rf.a_reads, 3);
        assert_eq!(c.tc_cycles, 15);
        a += b;
        assert_eq!(a.rf.a_reads, 3);
    }

    #[test]
    fn latency_uses_clock() {
        let s = GemmStats {
            total_cycles: 400,
            ..Default::default()
        };
        assert!((s.latency_s(400.0e6) - 1e-6).abs() < 1e-18);
    }
}
