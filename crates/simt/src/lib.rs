//! # pacq-simt — a Volta-like SIMT tensor-core simulator
//!
//! Substitute for the paper's custom Python simulator (§V): a
//! deterministic octet-level model of the Figure 3 `mma.m16n16k16`
//! pipeline that counts register-file / L1 / DRAM traffic, buffer
//! evictions, fetch instructions and cycles for three dataflows
//! ([`Architecture`]):
//!
//! 1. **StandardDequant** — the conventional W16A16 flow of Figure 1(a);
//! 2. **PackedK** — the hyper-asymmetric `P(B_x)_k` baseline with its
//!    Figure 4 fetch/eviction pathologies;
//! 3. **Pacq** — the proposed `P(B_x)_n` output-stationary flow.
//!
//! [`simulate`] produces the statistics behind Figures 7 and 10;
//! [`EnergyModel`] turns them into energy and EDP; [`execute`]
//! additionally runs each flow *functionally* through the bit-accurate
//! datapaths of `pacq-fp16`.
//!
//! ## Example
//!
//! ```
//! use pacq_simt::{simulate, Architecture, GemmShape, SmConfig, Workload};
//! use pacq_quant::GroupShape;
//! use pacq_fp16::WeightPrecision;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = SmConfig::volta_like();
//! let wl = Workload::new(GemmShape::M16N16K16, WeightPrecision::Int4);
//! let pacq = simulate(Architecture::Pacq, wl, &cfg, GroupShape::along_k(16))?;
//! let packed_k = simulate(Architecture::PackedK, wl, &cfg, GroupShape::along_k(16))?;
//! // Figure 7: PacQ needs ~2× fewer cycles and far fewer RF accesses.
//! assert!(packed_k.total_cycles > pacq.total_cycles);
//! assert!(packed_k.rf.total_accesses() > pacq.rf.total_accesses());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod config;
pub mod dataflow;
pub mod energy_model;
pub mod exec;
pub mod pipeline;
pub mod stats;

pub use config::{Architecture, GemmShape, SmConfig, Workload};
pub use dataflow::simulate;
pub use energy_model::{EnergyModel, EnergyReport, MulEnergyOverride};
pub use exec::{execute, execute_with_backend, reference};
pub use pacq_fp16::Backend;
pub use pipeline::{octet_schedule, OctetPipeline, PipelineEvent, PipelineTrace};
pub use stats::{GemmStats, GeneralCoreOps, LevelTraffic, RfTraffic};
