//! Energy accounting: turns [`GemmStats`] into picojoules and EDP.
//!
//! Composes the `pacq-energy` component/unit/SRAM models with the traffic
//! and cycle counts produced by the dataflow engines — the machinery
//! behind Figure 10's normalized EDP comparison.

use crate::config::{Architecture, SmConfig};
use crate::stats::GemmStats;
use pacq_energy::{Component, GemmUnit, SramModel, ENERGY_UNIT_PJ};

/// Activity-calibrated multiplier energies, in pJ per fully-active
/// cycle, measured by gate-level netlist simulation (`pacq-rtl`) and
/// priced through the per-gate-class BOM of `pacq_energy::activity`.
///
/// When installed on an [`EnergyModel`], these replace the analytic
/// multiplier constants inside every DP-unit price while the rest of
/// each unit's bill of materials (adder trees, accumulator) stays
/// analytic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MulEnergyOverride {
    /// Baseline FP16 multiplier energy per cycle, in pJ.
    pub baseline_pj_per_cycle: f64,
    /// Parallel FP-INT multiplier energy per cycle, in pJ.
    pub parallel_pj_per_cycle: f64,
}

/// Energy model for one simulated machine.
#[derive(Debug, Clone)]
pub struct EnergyModel {
    rf: SramModel,
    l1: SramModel,
    dram: SramModel,
    buffer: SramModel,
    clock_hz: f64,
    /// Activity-calibrated multiplier energies; `None` prices the
    /// multipliers analytically.
    mul_override: Option<MulEnergyOverride>,
}

/// Energy split of one GEMM run, in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyReport {
    /// Tensor-core datapath energy.
    pub tc_pj: f64,
    /// Register-file access energy.
    pub rf_pj: f64,
    /// L1 access energy.
    pub l1_pj: f64,
    /// DRAM access energy.
    pub dram_pj: f64,
    /// Operand-buffer energy.
    pub buffer_pj: f64,
    /// General-core energy (unpack, dequant, fixup, scaling).
    pub general_pj: f64,
}

impl EnergyReport {
    /// Total energy in pJ.
    pub fn total_pj(&self) -> f64 {
        self.tc_pj + self.rf_pj + self.l1_pj + self.dram_pj + self.buffer_pj + self.general_pj
    }
}

impl EnergyModel {
    /// Builds the model for a machine configuration.
    pub fn new(config: &SmConfig) -> Self {
        EnergyModel {
            rf: SramModel::new(
                pacq_energy::MemoryKind::RegisterFile,
                config.register_file_bytes,
            ),
            l1: SramModel::new(pacq_energy::MemoryKind::Cache, config.l1_bytes),
            dram: SramModel::dram(),
            buffer: SramModel::volta_operand_buffer(),
            clock_hz: config.clock_hz,
            mul_override: None,
        }
    }

    /// Builds the model from **explicit** per-level SRAM models — the
    /// constructor the `pacq-arch/v1` template layer uses when a
    /// template overrides per-level access energies. [`EnergyModel::new`]
    /// is exactly `with_levels` over the capacity-derived defaults, so a
    /// template that declares no energy overrides prices bit-identically
    /// to the hardcoded configuration.
    pub fn with_levels(
        rf: SramModel,
        l1: SramModel,
        dram: SramModel,
        buffer: SramModel,
        clock_hz: f64,
    ) -> Self {
        EnergyModel {
            rf,
            l1,
            dram,
            buffer,
            clock_hz,
            mul_override: None,
        }
    }

    /// Returns the model with activity-calibrated multiplier energies
    /// installed: DP-unit tensor-core prices substitute the measured
    /// per-cycle multiplier figures for the analytic constants.
    pub fn with_activity_calibrated(mut self, mul: MulEnergyOverride) -> Self {
        self.mul_override = Some(mul);
        self
    }

    /// The installed activity-calibrated multiplier energies, if any.
    pub fn activity_calibrated(&self) -> Option<MulEnergyOverride> {
        self.mul_override
    }

    /// The provenance token of the multiplier energy source, as it
    /// appears in manifests: `"analytic"` or `"activity_calibrated"`.
    pub fn mul_energy_source(&self) -> &'static str {
        if self.mul_override.is_some() {
            "activity_calibrated"
        } else {
            "analytic"
        }
    }

    /// The memory levels in hierarchy order (operand buffer, register
    /// file, L1, DRAM).
    pub fn levels(&self) -> [&SramModel; 4] {
        [&self.buffer, &self.rf, &self.l1, &self.dram]
    }

    /// The canonical identity string of this model's resolved per-level
    /// access energies (exact f64 bit patterns). Folded into cache keys:
    /// two models that price any level differently — even by one ulp —
    /// must never share a content address, whatever configuration or
    /// template produced them.
    pub fn energy_canonical(&self) -> String {
        let mut canonical = format!(
            "buf{:016x},rf{:016x},l1{:016x},dram{:016x}",
            self.buffer.energy_per_word16_pj().to_bits(),
            self.rf.energy_per_word16_pj().to_bits(),
            self.l1.energy_per_word16_pj().to_bits(),
            self.dram.energy_per_word16_pj().to_bits(),
        );
        if let Some(mul) = self.mul_override {
            // An activity-calibrated model must never share a content
            // address with the analytic one (or with a calibration run
            // that measured different figures).
            let _ = core::fmt::Write::write_fmt(
                &mut canonical,
                format_args!(
                    ",mulb{:016x},mulp{:016x}",
                    mul.baseline_pj_per_cycle.to_bits(),
                    mul.parallel_pj_per_cycle.to_bits(),
                ),
            );
        }
        canonical
    }

    /// Energy of one fully-active cycle of a tensor-core DP unit, in
    /// pJ: the analytic price, with the multiplier share substituted by
    /// the activity-calibrated figures when installed. Non-DP units
    /// price analytically either way.
    fn dp_unit_cycle_pj(&self, unit: GemmUnit) -> f64 {
        let analytic = unit.energy_per_cycle_pj();
        let Some(mul) = self.mul_override else {
            return analytic;
        };
        match unit {
            GemmUnit::BaselineDp { width } => {
                analytic
                    + width as f64
                        * (mul.baseline_pj_per_cycle
                            - GemmUnit::BaselineFp16Mul.energy_per_cycle_pj())
            }
            GemmUnit::ParallelDp { width, .. } => {
                analytic
                    + width as f64
                        * (mul.parallel_pj_per_cycle
                            - GemmUnit::ParallelFpIntMul.energy_per_cycle_pj())
            }
            _ => analytic,
        }
    }

    /// The tensor-core unit active on this architecture.
    pub fn tensor_core_unit(arch: Architecture, config: &SmConfig) -> GemmUnit {
        match arch {
            // The input-stationary flow re-orders tile movement but keeps
            // the baseline sequential-weight datapath — no parallel FP-INT
            // multipliers, so it prices like the other baseline flows.
            Architecture::StandardDequant
            | Architecture::PackedK
            | Architecture::InputStationary => GemmUnit::BaselineDp {
                width: config.dp_width,
            },
            Architecture::Pacq => GemmUnit::ParallelDp {
                width: config.dp_width,
                duplication: config.adder_tree_duplication,
            },
        }
    }

    /// Energy of one simulated GEMM.
    pub fn energy(&self, arch: Architecture, config: &SmConfig, stats: &GemmStats) -> EnergyReport {
        // Tensor cores: the per-warp DP units are busy `tc_cycles`, and
        // the SM keeps `concurrent_warps × dp_units_per_warp` units
        // occupied.
        let dp_unit = Self::tensor_core_unit(arch, config);
        let dp_units_active = (config.concurrent_warps()
            * config.octets_per_warp()
            * config.dp_units_per_octet()) as f64;
        let tc_pj = self.dp_unit_cycle_pj(dp_unit) * stats.tc_cycles as f64 * dp_units_active;

        // Memories: element accesses are 16-bit; level traffic is counted
        // in bits.
        let rf_pj = self.rf.read_energy_pj(stats.rf.a_bits + stats.rf.b_bits)
            + self.rf.write_energy_pj(stats.rf.c_bits / 2)
            + self.rf.read_energy_pj(stats.rf.c_bits / 2);
        let l1_pj = self.l1.read_energy_pj(stats.l1.read_bits)
            + self.l1.write_energy_pj(stats.l1.write_bits);
        let dram_pj = self.dram.read_energy_pj(stats.dram.read_bits)
            + self.dram.write_energy_pj(stats.dram.write_bits);
        let buffer_pj = self.buffer.write_energy_pj(stats.buffer_fills * 128);

        // General core.
        let ops = &stats.ops;
        let general_units = ops.unpack_ops as f64 * Component::UnpackShifter.energy_units()
            + ops.dequant_ops as f64 * Component::DequantMultiplier.energy_units()
            + ops.inline_converts as f64 * Component::UnpackShifter.energy_units()
            + ops.offset_fixups as f64 * Component::OffsetFixup.energy_units()
            + ops.scale_applies as f64 * Component::ScaleApply.energy_units()
            + ops.scale_fetches as f64 * 0.2; // scalar fetch + broadcast
        let general_pj = general_units * ENERGY_UNIT_PJ;

        EnergyReport {
            tc_pj,
            rf_pj,
            l1_pj,
            dram_pj,
            buffer_pj,
            general_pj,
        }
    }

    /// Energy-delay product in pJ·s.
    pub fn edp(&self, report: &EnergyReport, stats: &GemmStats) -> f64 {
        report.total_pj() * stats.latency_s(self.clock_hz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GemmShape, Workload};
    use crate::dataflow::simulate;
    use pacq_fp16::WeightPrecision;
    use pacq_quant::GroupShape;

    fn edp_of(arch: Architecture, shape: GemmShape, precision: WeightPrecision) -> f64 {
        let cfg = SmConfig::volta_like();
        let stats = simulate(
            arch,
            Workload::new(shape, precision),
            &cfg,
            GroupShape::G128,
        )
        .unwrap();
        let model = EnergyModel::new(&cfg);
        let report = model.energy(arch, &cfg, &stats);
        model.edp(&report, &stats)
    }

    #[test]
    fn with_levels_over_defaults_is_identical_to_new() {
        let cfg = SmConfig::volta_like();
        let auto = EnergyModel::new(&cfg);
        let explicit = EnergyModel::with_levels(
            SramModel::new(
                pacq_energy::MemoryKind::RegisterFile,
                cfg.register_file_bytes,
            ),
            SramModel::new(pacq_energy::MemoryKind::Cache, cfg.l1_bytes),
            SramModel::dram(),
            SramModel::volta_operand_buffer(),
            cfg.clock_hz,
        );
        assert_eq!(auto.energy_canonical(), explicit.energy_canonical());
        let stats = simulate(
            Architecture::Pacq,
            Workload::new(GemmShape::new(16, 256, 256), WeightPrecision::Int4),
            &cfg,
            GroupShape::G128,
        )
        .unwrap();
        let a = auto.energy(Architecture::Pacq, &cfg, &stats);
        let b = explicit.energy(Architecture::Pacq, &cfg, &stats);
        assert_eq!(a.total_pj().to_bits(), b.total_pj().to_bits());
        assert_eq!(
            auto.edp(&a, &stats).to_bits(),
            explicit.edp(&b, &stats).to_bits()
        );
    }

    #[test]
    fn energy_canonical_distinguishes_one_level_edits() {
        let cfg = SmConfig::volta_like();
        let base = EnergyModel::new(&cfg);
        let bumped = EnergyModel::with_levels(
            SramModel::with_access_energy(
                pacq_energy::MemoryKind::RegisterFile,
                cfg.register_file_bytes,
                base.levels()[1].energy_per_word16_pj() * (1.0 + 1e-12),
            )
            .unwrap(),
            *base.levels()[2],
            *base.levels()[3],
            *base.levels()[0],
            cfg.clock_hz,
        );
        assert_ne!(base.energy_canonical(), bumped.energy_canonical());
    }

    #[test]
    fn activity_override_substitutes_only_the_multiplier_share() {
        let cfg = SmConfig::volta_like();
        let stats = simulate(
            Architecture::Pacq,
            Workload::new(GemmShape::new(16, 256, 256), WeightPrecision::Int4),
            &cfg,
            GroupShape::G128,
        )
        .unwrap();
        let analytic = EnergyModel::new(&cfg);
        // Installing the analytic figures themselves must be a no-op:
        // the substitution touches exactly the multiplier share.
        let identity = EnergyModel::new(&cfg).with_activity_calibrated(MulEnergyOverride {
            baseline_pj_per_cycle: GemmUnit::BaselineFp16Mul.energy_per_cycle_pj(),
            parallel_pj_per_cycle: GemmUnit::ParallelFpIntMul.energy_per_cycle_pj(),
        });
        let a = analytic.energy(Architecture::Pacq, &cfg, &stats);
        let b = identity.energy(Architecture::Pacq, &cfg, &stats);
        assert!((a.tc_pj - b.tc_pj).abs() / a.tc_pj < 1e-12);
        assert_eq!(a.rf_pj.to_bits(), b.rf_pj.to_bits());

        // A doubled parallel multiplier must raise Pacq tensor-core
        // energy but leave baseline flows untouched.
        let doubled = EnergyModel::new(&cfg).with_activity_calibrated(MulEnergyOverride {
            baseline_pj_per_cycle: GemmUnit::BaselineFp16Mul.energy_per_cycle_pj(),
            parallel_pj_per_cycle: 2.0 * GemmUnit::ParallelFpIntMul.energy_per_cycle_pj(),
        });
        let c = doubled.energy(Architecture::Pacq, &cfg, &stats);
        assert!(c.tc_pj > a.tc_pj * 1.2, "{} !> {}", c.tc_pj, a.tc_pj);
        let std_stats = simulate(
            Architecture::StandardDequant,
            Workload::new(GemmShape::new(16, 256, 256), WeightPrecision::Int4),
            &cfg,
            GroupShape::G128,
        )
        .unwrap();
        let d = analytic.energy(Architecture::StandardDequant, &cfg, &std_stats);
        let e = doubled.energy(Architecture::StandardDequant, &cfg, &std_stats);
        assert_eq!(d.tc_pj.to_bits(), e.tc_pj.to_bits());
    }

    #[test]
    fn activity_override_changes_the_canonical_identity() {
        let cfg = SmConfig::volta_like();
        let base = EnergyModel::new(&cfg);
        assert_eq!(base.mul_energy_source(), "analytic");
        assert!(base.activity_calibrated().is_none());
        let ov = MulEnergyOverride {
            baseline_pj_per_cycle: 0.9,
            parallel_pj_per_cycle: 1.06,
        };
        let calibrated = EnergyModel::new(&cfg).with_activity_calibrated(ov);
        assert_eq!(calibrated.mul_energy_source(), "activity_calibrated");
        assert_eq!(calibrated.activity_calibrated(), Some(ov));
        assert_ne!(base.energy_canonical(), calibrated.energy_canonical());
        assert!(calibrated
            .energy_canonical()
            .starts_with(&base.energy_canonical()));
        let ulp = EnergyModel::new(&cfg).with_activity_calibrated(MulEnergyOverride {
            baseline_pj_per_cycle: f64::from_bits(0.9f64.to_bits() + 1),
            parallel_pj_per_cycle: 1.06,
        });
        assert_ne!(calibrated.energy_canonical(), ulp.energy_canonical());
    }

    #[test]
    fn energy_components_are_positive() {
        let cfg = SmConfig::volta_like();
        let stats = simulate(
            Architecture::Pacq,
            Workload::new(GemmShape::new(16, 256, 256), WeightPrecision::Int4),
            &cfg,
            GroupShape::G128,
        )
        .unwrap();
        let r = EnergyModel::new(&cfg).energy(Architecture::Pacq, &cfg, &stats);
        assert!(r.tc_pj > 0.0);
        assert!(r.rf_pj > 0.0);
        assert!(r.l1_pj > 0.0);
        assert!(r.dram_pj > 0.0);
        assert!(r.general_pj > 0.0);
        assert!(r.total_pj() > r.tc_pj);
    }

    #[test]
    fn pacq_beats_baselines_on_edp_for_llm_shapes() {
        // Figure 10's ordering: PacQ < P(B)k < Standard for the Llama2
        // FFN shape at batch 16.
        let shape = GemmShape::new(16, 1024, 1024); // scaled-down FFN
        for precision in [WeightPrecision::Int4, WeightPrecision::Int2] {
            let std = edp_of(Architecture::StandardDequant, shape, precision);
            let pk = edp_of(Architecture::PackedK, shape, precision);
            let pq = edp_of(Architecture::Pacq, shape, precision);
            assert!(pq < pk, "{precision}: PacQ {pq} !< PackedK {pk}");
            assert!(pq < std, "{precision}: PacQ {pq} !< Standard {std}");
        }
        // At INT4 the packed baseline still beats dequantization; at INT2
        // its A-refetch pathology escalates to the L1 (§III) and can cost
        // more than dequantizing — which is exactly the paper's
        // motivation for fixing the packing direction.
        let std = edp_of(Architecture::StandardDequant, shape, WeightPrecision::Int4);
        let pk = edp_of(Architecture::PackedK, shape, WeightPrecision::Int4);
        assert!(pk < std, "INT4: PackedK {pk} !< Standard {std}");
    }

    #[test]
    fn edp_reduction_matches_fig10_band() {
        // Paper: up to 81.4 % EDP reduction at m16n4096k4096.
        let shape = GemmShape::new(16, 4096, 4096);
        let best = [WeightPrecision::Int4, WeightPrecision::Int2]
            .iter()
            .map(|&p| {
                1.0 - edp_of(Architecture::Pacq, shape, p)
                    / edp_of(Architecture::StandardDequant, shape, p)
            })
            .fold(0.0f64, f64::max);
        assert!(
            (0.75..0.88).contains(&best),
            "best EDP reduction = {best}, paper reports 0.814"
        );
    }
}
