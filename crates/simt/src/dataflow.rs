//! The three dataflow engines: analytic octet-level simulation of the
//! Figure 3 pipeline for each architecture.
//!
//! A GEMM is tiled into warp-level `mma.m16n16k16` instructions
//! (Figure 3(a)), each split across 4 octets owning an 8(m)×8(n) output
//! chunk over k=16 (Figure 3(b)), iterated in 4(m)×4(n)×w(k) compute
//! tiles where `w` is the DP width (Figure 3(c)–(d)). The engines count,
//! per octet per warp tile, every operand movement between the register
//! file and the tensor-core buffers, every fetch instruction, buffer
//! eviction and compute cycle — the quantities behind Figures 7 and 10.
//!
//! The per-step loops are folded analytically (each step contributes a
//! constant), which keeps `m16n4096k4096`-scale simulations instant while
//! remaining auditable: every constant is derived in comments from the
//! Figure 3/4 tile walk.

use crate::config::{Architecture, GemmShape, SmConfig, Workload};
use crate::stats::{GemmStats, GeneralCoreOps, RfTraffic};
use pacq_error::PacqResult;
use pacq_fp16::WeightPrecision;
use pacq_quant::GroupShape;

/// Octet geometry constants of Figure 3.
const OCTET_M: u64 = 8;
const OCTET_N: u64 = 8;
const WARP_K: u64 = 16;
const TILE_M: u64 = 4;
const TILE_N: u64 = 4;

/// Simulates one GEMM on the given architecture and returns its
/// statistics.
///
/// `group` is the quantization-group geometry (it determines how many
/// scale fetches and Eq. (1) fixup segments the general core performs;
/// irrelevant counts are zero for the flows that do not use it).
///
/// Ragged shapes (extents not multiples of 16) execute zero-padded onto
/// the warp-tile grid via [`GemmShape::padded_to_tiles`]: the hardware
/// has no partial-tile path, so a ragged edge costs a full tile of
/// movement and compute. Every counter returned reflects the padded
/// extents — `simulate(m3n40k17) == simulate(m16n48k32)` exactly, an
/// invariant `pacq audit` checks.
///
/// # Errors
///
/// Returns [`PacqError::InvalidInput`] if the [`SmConfig`] fails
/// [`SmConfig::validate`].
pub fn simulate(
    arch: Architecture,
    workload: Workload,
    config: &SmConfig,
    group: GroupShape,
) -> PacqResult<GemmStats> {
    let _span = pacq_trace::span("simt.simulate");
    let shape = workload.shape.padded_to_tiles();
    config.validate()?;
    pacq_trace::add_counter("simt.simulate.calls", 1);
    let precision = workload.precision;

    let per_octet = match arch {
        Architecture::StandardDequant => octet_standard(config),
        Architecture::PackedK => octet_packed_k(config, precision),
        Architecture::Pacq => octet_pacq(config, precision),
        Architecture::InputStationary => octet_is(config, precision),
    };

    let warp_tiles = shape.warp_tiles();
    let octets = warp_tiles * 4;

    // --- register-file traffic: octet counts × octet instances ---------
    let mut stats = GemmStats {
        rf: RfTraffic {
            a_reads: per_octet.rf.a_reads * octets,
            b_reads: per_octet.rf.b_reads * octets,
            c_reads: per_octet.rf.c_reads * octets,
            c_writes: per_octet.rf.c_writes * octets,
            a_bits: per_octet.rf.a_bits * octets,
            b_bits: per_octet.rf.b_bits * octets,
            c_bits: per_octet.rf.c_bits * octets,
        },
        buffer_fills: per_octet.buffer_fills * octets,
        buffer_evictions: per_octet.buffer_evictions * octets,
        fetch_instructions: per_octet.fetch_instructions * octets,
        ..GemmStats::default()
    };

    // --- memory hierarchy traffic --------------------------------------
    let (m, n, k) = (shape.m as u64, shape.n as u64, shape.k as u64);
    let wbits = precision.bits() as u64;
    let n_tiles = n.div_ceil(16);
    let m_tiles = m.div_ceil(16);

    // DRAM: every operand streamed once; weights are stored packed in
    // DRAM for ALL flows (Figure 1(a) keeps DRAM packed even for the
    // dequantization baseline). Post-padding n·k is a multiple of 256 and
    // lanes divides 16, so the packed-word division is exact; div_ceil
    // keeps it honest if the padding invariant ever moves.
    stats.dram.reads = m * k + (n * k).div_ceil(precision.lanes() as u64);
    stats.dram.read_bits = m * k * 16 + n * k * wbits;
    stats.dram.writes = m * n;
    stats.dram.write_bits = m * n * 16;

    // L1 fills mirror DRAM reads.
    stats.l1.writes = stats.dram.reads;
    stats.l1.write_bits = stats.dram.read_bits;

    // L1 → RF: A re-read once per warp-tile column; B re-read once per
    // warp-tile row.
    let a_l1_reads = m * k * n_tiles;
    let a_l1_bits = a_l1_reads * 16;
    let (b_l1_reads, b_l1_bits, l1_dequant_writes, l1_dequant_write_bits) = match arch {
        Architecture::StandardDequant => {
            // The general core reads packed words once, writes dequantized
            // FP16 weights back to L1, and the RF then loads FP16.
            let packed_reads = (n * k).div_ceil(precision.lanes() as u64);
            let fp16_reads = n * k * m_tiles;
            (
                packed_reads + fp16_reads,
                packed_reads * 16 + fp16_reads * 16,
                n * k,
                n * k * 16,
            )
        }
        Architecture::PackedK | Architecture::Pacq | Architecture::InputStationary => {
            let words = (n * k).div_ceil(precision.lanes() as u64) * m_tiles;
            (words, words * 16, 0, 0)
        }
    };
    stats.l1.reads += a_l1_reads + b_l1_reads;
    stats.l1.read_bits += a_l1_bits + b_l1_bits;
    stats.l1.writes += l1_dequant_writes;
    stats.l1.write_bits += l1_dequant_write_bits;

    // PackedK with INT2: the A-eviction pathology escalates past the
    // register file (§III: "this issue can even escalate beyond the
    // register file level to the L1 cache") — half the A re-fetches miss
    // the RF-resident set.
    if arch == Architecture::PackedK && precision == WeightPrecision::Int2 {
        let extra = stats.rf.a_reads / 2;
        stats.l1.reads += extra;
        stats.l1.read_bits += extra * 16;
    }

    // --- general-core operations ----------------------------------------
    stats.ops = general_core_ops(arch, shape, precision, group);

    // --- timing ----------------------------------------------------------
    let per_warp_cycles = per_octet.compute_cycles + PIPELINE_TAIL;
    let waves = warp_tiles.div_ceil(config.concurrent_warps() as u64);
    stats.tc_cycles = waves * per_warp_cycles;

    match arch {
        Architecture::StandardDequant => {
            // Unpack+dequant is a non-overlapped general-core phase
            // (§I challenge (2): "significant latency and computational
            // overhead").
            stats.general_cycles =
                (stats.ops.dequant_ops as f64 / config.dequant_weights_per_cycle).ceil() as u64;
            stats.total_cycles = stats.tc_cycles + stats.general_cycles;
        }
        Architecture::PackedK | Architecture::InputStationary => {
            // Inline conversion overlaps the tensor-core pipeline.
            stats.general_cycles = 0;
            stats.total_cycles = stats.tc_cycles;
        }
        Architecture::Pacq => {
            // Fixup + scaling stream behind the tensor cores (Figure 6);
            // they only lengthen the run if they out-pace the TCs.
            let epilogue_rate = 32.0; // fixups per SM cycle
            stats.general_cycles = (stats.ops.offset_fixups as f64 / epilogue_rate).ceil() as u64;
            stats.total_cycles = stats.tc_cycles.max(stats.general_cycles) + EPILOGUE_TAIL;
        }
    }

    // Optional roofline memory floor: no flow finishes before its DRAM
    // traffic has streamed (compute and transfer overlapping fully in
    // the best case). Disabled by default — the paper's simulator tracks
    // kernel cycles with operands staged on chip.
    if config.dram_bytes_per_cycle.is_finite() {
        let dram_floor = ((stats.dram.read_bits + stats.dram.write_bits) as f64
            / 8.0
            / config.dram_bytes_per_cycle)
            .ceil() as u64;
        stats.total_cycles = stats.total_cycles.max(dram_floor);
    }

    Ok(stats)
}

/// Pipeline fill/drain tail per warp tile (multiply + tree + accumulate).
const PIPELINE_TAIL: u64 = 3;
/// General-core epilogue tail for the PacQ fixup path.
const EPILOGUE_TAIL: u64 = 2;

/// Per-octet per-warp-tile contribution.
#[derive(Debug, Clone, Copy, Default)]
struct OctetCounts {
    rf: RfTraffic,
    buffer_fills: u64,
    buffer_evictions: u64,
    fetch_instructions: u64,
    compute_cycles: u64,
}

/// Standard dequantization flow: FP16 operands, weight-stationary tile
/// movement (Figure 3(c) left), output-stationary compute.
fn octet_standard(config: &SmConfig) -> OctetCounts {
    let w = config.dp_width as u64; // k-extent of one compute step
    let mt = OCTET_M / TILE_M; // 2
    let nt = OCTET_N / TILE_N; // 2
    let kt = WARP_K / w; // 4 at DP-4
    let steps = mt * nt * kt;

    // Movement nt { kt { mt } }: B tile fetched once per (nt,kt) and held
    // across mt; A re-fetched every step; C read+written every step except
    // the first k-slice of each output tile (no read) — partial sums
    // cannot stay resident because mt cycles under the held B.
    let a_reads = steps * TILE_M * w;
    let b_reads = nt * kt * w * TILE_N; // each B element exactly once
    let c_writes = steps * TILE_M * TILE_N;
    let c_reads = c_writes - mt * nt * TILE_M * TILE_N; // first slice free

    // Fetch instructions fold the explicit schedule of
    // `pipeline::octet_schedule`: 2 A fetches every step (two
    // thread-group buffers, Figure 3(d)), one B fetch per (nt, kt) held
    // across the m loop, a C read on every step past each output tile's
    // first k-slice, and a C write every step. A and B fetches fill an
    // operand buffer; C moves go straight to the accumulators.
    let a_fetches = steps * 2;
    let b_fetches = nt * kt;
    let c_read_fetches = steps - mt * nt;
    let fetch_instructions = a_fetches + b_fetches + c_read_fetches + steps;
    let buffer_fills = a_fetches + b_fetches;

    // Per step: 4×4 outputs, each one w-element dot product; 2 DP units
    // per octet at issue interval 1 → 8 cycles.
    let dots_per_step = TILE_M * TILE_N;
    let compute_cycles = steps * dots_per_step / config.dp_units_per_octet() as u64;

    OctetCounts {
        rf: RfTraffic {
            a_reads,
            b_reads,
            c_reads,
            c_writes,
            a_bits: a_reads * 16,
            b_bits: b_reads * 16,
            c_bits: (c_reads + c_writes) * 16,
        },
        buffer_fills,
        buffer_evictions: 0,
        fetch_instructions,
        compute_cycles,
    }
}

/// `P(B_x)_k`: packed words enter the tensor core, but every packed word
/// forces `x` aligned A fetches (Figure 4(a)) and evicts the A buffer
/// before reuse (Figure 4(b)).
fn octet_packed_k(config: &SmConfig, precision: WeightPrecision) -> OctetCounts {
    let w = config.dp_width as u64;
    let lanes = precision.lanes() as u64;
    let mt = OCTET_M / TILE_M;
    let nt = OCTET_N / TILE_N;
    let kt = WARP_K / w;
    let steps = mt * nt * kt;

    // Each packed word covers `lanes` k-values in ONE output column, so a
    // compute step over a w(k)×4(n) weight tile touches
    // `4 × max(1, w/lanes)` word-fragments; every word is read from the RF
    // once (weight-stationary movement reuses it across mt).
    let words_in_region = OCTET_N * WARP_K / lanes;
    let b_reads = words_in_region;

    // The A pathology: for every output column of every step, the aligned
    // A sub-tile (4m × w k) is re-fetched because the previous column's
    // processing evicted it — no reuse of A across the packed words.
    let a_reads = steps * TILE_N * TILE_M * w;

    // C: same weight-stationary movement as the standard flow.
    let c_writes = steps * TILE_M * TILE_N;
    let c_reads = c_writes - mt * nt * TILE_M * TILE_N;

    // Figure 4(a): `lanes` distinct aligned A fetch instructions per
    // output column on every step (the previous column's processing
    // evicted the sub-tile, so none are elided). B words are fetched
    // once per (nt, kt) and held across the m loop; C movement mirrors
    // the standard flow. Each A and B fetch fills an operand buffer —
    // the refilled A buffer is the Figure 4(b) pathology itself.
    let a_fetches = steps * TILE_N * lanes.min(w);
    let b_fetches = nt * kt;
    let c_read_fetches = steps - mt * nt;
    let fetch_instructions = a_fetches + b_fetches + c_read_fetches + steps;
    let buffer_fills = a_fetches + b_fetches;
    let buffer_evictions = steps * TILE_N; // A evicted per column

    // Sequential weight processing: same dot count as the baseline.
    let dots_per_step = TILE_M * TILE_N;
    let compute_cycles = steps * dots_per_step / config.dp_units_per_octet() as u64;

    OctetCounts {
        rf: RfTraffic {
            a_reads,
            b_reads,
            c_reads,
            c_writes,
            a_bits: a_reads * 16,
            b_bits: b_reads * 16,
            c_bits: (c_reads + c_writes) * 16,
        },
        buffer_fills,
        buffer_evictions,
        fetch_instructions,
        compute_cycles,
    }
}

/// PacQ `P(B_x)_n`: output-stationary movement and compute; A fetched once
/// per (m, k) step and reused across all packed lanes; C lives in the
/// accumulators; Σ A tracked in the side accumulators.
fn octet_pacq(config: &SmConfig, precision: WeightPrecision) -> OctetCounts {
    let w = config.dp_width as u64;
    let lanes = precision.lanes() as u64;
    let dup = config.adder_tree_duplication as u64;
    let mt = OCTET_M / TILE_M;
    // One packed word spans `lanes` output columns; the octet's 8 columns
    // form max(1, 8/lanes) word-columns.
    let word_cols = (OCTET_N / lanes).max(1);
    let kt = WARP_K / w;
    let steps = mt * word_cols * kt;

    // Output-stationary: A fetched once per step (4m × w k), fully reused
    // across the packed lanes inside the parallel multipliers; B words
    // streamed once per step; C written once when a tile retires.
    let a_reads = steps * TILE_M * w;
    let b_reads = steps * w; // one packed word per k-value of the step
    let c_writes = mt * word_cols * TILE_M * lanes.min(OCTET_N);
    let c_reads = 0;

    // Per step: 2 A fetch instructions + 1 packed-B fetch.
    let fetch_instructions = steps * 3 + mt * word_cols; // + C writeback
    let buffer_fills = steps * 3;

    // Per step: each m row issues once into a DP unit (w activations ×
    // w packed words → `lanes` partial dot products); the duplicated
    // adder trees retire `dup` lanes per cycle → issue interval
    // lanes/dup; 4 rows over 2 DP units → 2 sequential issues.
    let issue_interval = lanes.div_ceil(dup).max(1);
    let issues_per_step = TILE_M / config.dp_units_per_octet() as u64;
    let compute_cycles = steps * issues_per_step * issue_interval;

    OctetCounts {
        rf: RfTraffic {
            a_reads,
            b_reads,
            c_reads,
            c_writes,
            a_bits: a_reads * 16,
            b_bits: b_reads * 16,
            c_bits: (c_reads + c_writes) * 16,
        },
        buffer_fills,
        buffer_evictions: 0,
        fetch_instructions,
        compute_cycles,
    }
}

/// Input-stationary `P(B_x)_k`: the activation tile is the held operand.
/// The Figure 3 walk is re-ordered with the m/k loops hoisted outside n —
/// the mirror image of the standard flow's `nt { kt { mt } }` — so the A
/// sub-tile loaded for a (mt, kt) coordinate stays resident in the operand
/// buffers while all n columns consume it, and packed-B words plus C
/// partial sums stream instead.
fn octet_is(config: &SmConfig, precision: WeightPrecision) -> OctetCounts {
    let w = config.dp_width as u64;
    let lanes = precision.lanes() as u64;
    let mt = OCTET_M / TILE_M; // 2
    let nt = OCTET_N / TILE_N; // 2
    let kt = WARP_K / w; // 4 at DP-4
    let steps = mt * nt * kt;

    // Movement mt { kt { nt } }: the A tile (4m × w k) is fetched once per
    // (mt, kt) and held across nt, so each of the octet's 8×16 activation
    // elements crosses the RF boundary exactly once — the property the
    // `P(B_x)_k` eviction pathology destroys (Figure 4(b)).
    let a_reads = mt * kt * TILE_M * w;

    // B streams: each step consumes a w(k)×4(n) weight region as packed
    // words. One word covers `lanes` k-values of one output column, so a
    // column needs max(1, w/lanes) word reads per step; nothing is held
    // across the m loop (the buffers belong to A), so the region is
    // re-streamed for every mt — the B-traffic price of holding A.
    let b_reads = steps * TILE_N * w.div_ceil(lanes);

    // C streams exactly as in the weight-stationary flows: with k outside
    // the innermost loop, an output tile's partial sums cannot stay in the
    // accumulators between k-slices — written every step, read back on
    // every step past each tile's first k-slice.
    let c_writes = steps * TILE_M * TILE_N;
    let c_reads = c_writes - mt * nt * TILE_M * TILE_N; // first slice free

    // Fetch instructions fold the `pipeline::octet_schedule` walk: 2 A
    // fetches per (mt, kt) — the two thread-group buffers of Figure 3(d),
    // filled once and reused across nt — one packed-B fetch every step,
    // a C read on every step past each tile's first k-slice, and a C
    // write every step. A and B fetches fill operand buffers; nothing is
    // ever evicted early because the packed words are k-aligned with the
    // held A sub-tile.
    let a_fetches = mt * kt * 2;
    let b_fetches = steps;
    let c_read_fetches = steps - mt * nt;
    let fetch_instructions = a_fetches + b_fetches + c_read_fetches + steps;
    let buffer_fills = a_fetches + b_fetches;

    // Sequential weight processing on the baseline DP units (packed words
    // are converted inline, not multiplied in parallel): same dot count
    // and issue rate as the standard and `P(B_x)_k` flows.
    let dots_per_step = TILE_M * TILE_N;
    let compute_cycles = steps * dots_per_step / config.dp_units_per_octet() as u64;

    OctetCounts {
        rf: RfTraffic {
            a_reads,
            b_reads,
            c_reads,
            c_writes,
            a_bits: a_reads * 16,
            b_bits: b_reads * 16,
            c_bits: (c_reads + c_writes) * 16,
        },
        buffer_fills,
        buffer_evictions: 0,
        fetch_instructions,
        compute_cycles,
    }
}

/// General-core operation counts for the whole GEMM.
fn general_core_ops(
    arch: Architecture,
    shape: GemmShape,
    precision: WeightPrecision,
    group: GroupShape,
) -> GeneralCoreOps {
    let (m, n, k) = (shape.m as u64, shape.n as u64, shape.k as u64);
    let weights = n * k;
    match arch {
        Architecture::StandardDequant => GeneralCoreOps {
            unpack_ops: weights,
            dequant_ops: weights,
            ..Default::default()
        },
        Architecture::PackedK => GeneralCoreOps {
            // Inline INT→FP16 conversion on every buffer fill: the packed
            // region is re-converted once per warp-tile row. div_ceil, not
            // truncation — a ragged m still walks a full tile row.
            inline_converts: weights * m.div_ceil(16),
            scale_applies: m * n * (k as usize).div_ceil(group.k_size) as u64,
            scale_fetches: m.div_ceil(16)
                * group.scale_fetches_for_tiled_walk(shape.k, shape.n, 1, 4) as u64,
            ..Default::default()
        },
        Architecture::InputStationary => GeneralCoreOps {
            // Inline conversion on every packed-B buffer fill. B is
            // re-streamed once per mt inside each octet (the buffers hold
            // A), so the region converts OCTET_M/TILE_M = 2 times per
            // warp-tile row — twice the `P(B_x)_k` count, and the scale
            // walk repeats with it.
            inline_converts: 2 * weights * m.div_ceil(16),
            scale_applies: m * n * (k as usize).div_ceil(group.k_size) as u64,
            scale_fetches: 2
                * m.div_ceil(16)
                * group.scale_fetches_for_tiled_walk(shape.k, shape.n, 1, 4) as u64,
            ..Default::default()
        },
        Architecture::Pacq => {
            let k_segments = (shape.k).div_ceil(group.k_size) as u64;
            GeneralCoreOps {
                // One Eq. (1) fixup and one scale application per output
                // element per k-group segment (Figure 6 ①–③).
                offset_fixups: m * n * k_segments,
                scale_applies: m * n * k_segments,
                scale_fetches: m.div_ceil(16)
                    * group.scale_fetches_for_tiled_walk(shape.k, shape.n, precision.lanes(), 4)
                        as u64,
                ..Default::default()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacq_error::PacqError;

    fn volta() -> SmConfig {
        SmConfig::volta_like()
    }

    fn run(arch: Architecture, precision: WeightPrecision) -> GemmStats {
        simulate(
            arch,
            Workload::new(GemmShape::M16N16K16, precision),
            &volta(),
            GroupShape::along_k(16),
        )
        .unwrap()
    }

    #[test]
    fn pacq_speedup_over_packed_k_is_about_2x() {
        // Figure 7(b): average speedup 1.99×.
        for precision in [WeightPrecision::Int4, WeightPrecision::Int2] {
            let base = run(Architecture::PackedK, precision);
            let pacq = run(Architecture::Pacq, precision);
            let speedup = base.total_cycles as f64 / pacq.total_cycles as f64;
            assert!(
                (1.85..2.05).contains(&speedup),
                "{precision}: speedup = {speedup}"
            );
        }
    }

    #[test]
    fn pacq_reduces_rf_accesses() {
        // Figure 7(a): PacQ needs fewer register file accesses than
        // P(B_x)_k, and the reduction grows from INT4 to INT2.
        let red = |p| {
            let base = run(Architecture::PackedK, p).rf.total_accesses() as f64;
            let pacq = run(Architecture::Pacq, p).rf.total_accesses() as f64;
            1.0 - pacq / base
        };
        let r4 = red(WeightPrecision::Int4);
        let r2 = red(WeightPrecision::Int2);
        assert!(r4 > 0.4, "INT4 reduction = {r4}");
        assert!(r2 > r4, "INT2 {r2} should exceed INT4 {r4}");
    }

    #[test]
    fn packed_k_suffers_a_refetch_and_evictions() {
        let std = run(Architecture::StandardDequant, WeightPrecision::Int4);
        let pk = run(Architecture::PackedK, WeightPrecision::Int4);
        assert_eq!(pk.rf.a_reads, 4 * std.rf.a_reads, "4 lanes → 4x A traffic");
        assert!(pk.buffer_evictions > 0);
        assert_eq!(std.buffer_evictions, 0);
        assert!(pk.fetch_instructions > std.fetch_instructions);
    }

    #[test]
    fn packed_weights_shrink_b_traffic() {
        let std = run(Architecture::StandardDequant, WeightPrecision::Int4);
        let pacq = run(Architecture::Pacq, WeightPrecision::Int4);
        // Std holds B across the m-loop (weight stationary) so each FP16
        // element is read once; PacQ streams packed words once per m-tile
        // but each word carries 4 weights → net 2× fewer B reads and bits.
        assert_eq!(pacq.rf.b_reads * 2, std.rf.b_reads);
        assert_eq!(pacq.rf.b_bits * 2, std.rf.b_bits);
    }

    #[test]
    fn standard_flow_pays_dequant_cycles_and_ops() {
        let std = run(Architecture::StandardDequant, WeightPrecision::Int4);
        assert_eq!(std.ops.dequant_ops, 16 * 16);
        assert_eq!(std.ops.unpack_ops, 16 * 16);
        assert!(std.general_cycles > 0);
        let pacq = run(Architecture::Pacq, WeightPrecision::Int4);
        assert_eq!(pacq.ops.dequant_ops, 0);
        assert!(pacq.ops.offset_fixups > 0);
    }

    #[test]
    fn int2_packed_k_escalates_to_l1() {
        // §III: hyper-asymmetry at INT2 pushes refetches past the RF.
        let pk4 = run(Architecture::PackedK, WeightPrecision::Int4);
        let pk2 = run(Architecture::PackedK, WeightPrecision::Int2);
        assert!(pk2.l1.reads > pk4.l1.reads);
    }

    #[test]
    fn large_shapes_scale_linearly() {
        let small = simulate(
            Architecture::Pacq,
            Workload::new(GemmShape::new(16, 64, 64), WeightPrecision::Int4),
            &volta(),
            GroupShape::along_k(64),
        )
        .unwrap();
        let big = simulate(
            Architecture::Pacq,
            Workload::new(GemmShape::new(16, 128, 64), WeightPrecision::Int4),
            &volta(),
            GroupShape::along_k(64),
        )
        .unwrap();
        assert_eq!(big.rf.a_reads, 2 * small.rf.a_reads);
        assert_eq!(big.rf.b_reads, 2 * small.rf.b_reads);
        assert_eq!(big.dram.write_bits, 2 * small.dram.write_bits);
    }

    #[test]
    fn adder_tree_duplication_shortens_pacq() {
        let mut cfg = volta();
        let wl = Workload::new(GemmShape::M16N16K16, WeightPrecision::Int4);
        let g = GroupShape::along_k(16);
        cfg.adder_tree_duplication = 1;
        let d1 = simulate(Architecture::Pacq, wl, &cfg, g).unwrap().tc_cycles;
        cfg.adder_tree_duplication = 2;
        let d2 = simulate(Architecture::Pacq, wl, &cfg, g).unwrap().tc_cycles;
        cfg.adder_tree_duplication = 4;
        let d4 = simulate(Architecture::Pacq, wl, &cfg, g).unwrap().tc_cycles;
        assert!(d1 > d2 && d2 > d4, "cycles {d1} > {d2} > {d4}");
    }

    #[test]
    fn dram_bound_floors_small_kernels() {
        let wl = Workload::new(GemmShape::M16N16K16, WeightPrecision::Int4);
        let g = GroupShape::along_k(16);
        let free = simulate(Architecture::Pacq, wl, &volta(), g).unwrap();
        let bound_cfg = SmConfig::volta_like().with_dram_bound(8.0).unwrap();
        let bound = simulate(Architecture::Pacq, wl, &bound_cfg, g).unwrap();
        assert!(bound.total_cycles > free.total_cycles);
        // The floor equals the streamed bytes over the bandwidth.
        let bytes = (bound.dram.read_bits + bound.dram.write_bits) / 8;
        assert_eq!(bound.total_cycles, bytes.div_ceil(8));
    }

    #[test]
    fn ragged_shape_executes_as_its_padded_counterpart() {
        // A ragged GEMM is zero-padded onto the warp-tile grid: every
        // counter equals the padded shape's, exactly — no truncated
        // traffic, no phantom partial tiles.
        let g = GroupShape::along_k(16);
        for arch in [
            Architecture::StandardDequant,
            Architecture::PackedK,
            Architecture::Pacq,
            Architecture::InputStationary,
        ] {
            for precision in [WeightPrecision::Int4, WeightPrecision::Int2] {
                let ragged = simulate(
                    arch,
                    Workload::new(GemmShape::new(3, 40, 17), precision),
                    &volta(),
                    g,
                )
                .unwrap();
                let padded = simulate(
                    arch,
                    Workload::new(GemmShape::new(16, 48, 32), precision),
                    &volta(),
                    g,
                )
                .unwrap();
                assert_eq!(ragged, padded, "{arch:?}/{precision}");
            }
        }
    }

    #[test]
    fn ragged_m_pays_a_full_tile_row() {
        // Regression pin for the former `(m / 16).max(1)` truncation: at
        // m = 17 the general core walks TWO tile rows, not one.
        let run_m = |m| {
            simulate(
                Architecture::PackedK,
                Workload::new(GemmShape::new(m, 64, 64), WeightPrecision::Int4),
                &volta(),
                GroupShape::along_k(64),
            )
            .unwrap()
        };
        let m16 = run_m(16);
        let m17 = run_m(17);
        assert_eq!(m17.ops.inline_converts, 2 * m16.ops.inline_converts);
        assert_eq!(m17.ops.scale_fetches, 2 * m16.ops.scale_fetches);
        assert_eq!(m17.rf.a_reads, 2 * m16.rf.a_reads);
    }

    #[test]
    fn input_stationary_reads_each_activation_once() {
        // The defining property of the flow: holding A across the n loop
        // brings RF A-traffic down to one read per activation element per
        // octet column (the 2×2 octet grid's two n-columns share A rows,
        // so a warp tile reads each of its 16×16 activations twice) —
        // where the standard flow re-fetches A every step and P(B_x)_k
        // multiplies that by the eviction factor.
        for precision in [WeightPrecision::Int4, WeightPrecision::Int2] {
            let is = run(Architecture::InputStationary, precision);
            let std = run(Architecture::StandardDequant, precision);
            let pk = run(Architecture::PackedK, precision);
            assert_eq!(is.rf.a_reads, 2 * 16 * 16, "{precision}: once/octet-col");
            assert_eq!(std.rf.a_reads, 2 * is.rf.a_reads);
            assert!(pk.rf.a_reads > std.rf.a_reads);
            assert_eq!(is.buffer_evictions, 0, "held A is never evicted");
        }
    }

    #[test]
    fn input_stationary_coincides_with_ws_and_os_where_the_flows_overlap() {
        // On degenerate M=1 / N=1 shapes (padded to a single tile row /
        // column) the walks collapse and the flows' shared structure is
        // directly comparable:
        //  - C streams identically to the weight-stationary flows (k sits
        //    outside the innermost loop in both), so C traffic matches the
        //    standard flow exactly;
        //  - weights are processed sequentially, so tensor-core cycles
        //    match P(B_x)_k exactly;
        //  - at INT2 one packed word spans the whole octet row, so the
        //    output-stationary walk also touches each activation exactly
        //    once and A traffic coincides with PacQ.
        let g = GroupShape::along_k(16);
        for shape in [GemmShape::new(1, 16, 16), GemmShape::new(16, 1, 16)] {
            for precision in [WeightPrecision::Int4, WeightPrecision::Int2] {
                let at =
                    |arch| simulate(arch, Workload::new(shape, precision), &volta(), g).unwrap();
                let is = at(Architecture::InputStationary);
                let ws = at(Architecture::StandardDequant);
                let pk = at(Architecture::PackedK);
                let os = at(Architecture::Pacq);
                assert_eq!(is.rf.c_reads, ws.rf.c_reads, "{shape}/{precision}");
                assert_eq!(is.rf.c_writes, ws.rf.c_writes, "{shape}/{precision}");
                assert_eq!(is.rf.c_bits, ws.rf.c_bits, "{shape}/{precision}");
                assert_eq!(is.tc_cycles, pk.tc_cycles, "{shape}/{precision}");
                if precision == WeightPrecision::Int2 {
                    assert_eq!(is.rf.a_reads, os.rf.a_reads, "{shape}/{precision}");
                }
            }
        }
    }

    #[test]
    fn degenerate_config_is_a_typed_error() {
        let wl = Workload::new(GemmShape::M16N16K16, WeightPrecision::Int4);
        let g = GroupShape::along_k(16);
        for mutate in [
            (|c: &mut SmConfig| c.dp_width = 0) as fn(&mut SmConfig),
            |c| c.dp_width = 5,
            |c| c.adder_tree_duplication = 0,
            |c| c.adder_tree_duplication = 3,
            |c| c.tensor_cores = 0,
            |c| c.dp_units_per_tc = 0,
            |c| c.dequant_weights_per_cycle = 0.0,
            |c| c.dequant_weights_per_cycle = f64::NAN,
        ] {
            let mut cfg = volta();
            mutate(&mut cfg);
            let err = simulate(Architecture::StandardDequant, wl, &cfg, g).unwrap_err();
            assert!(
                matches!(err, PacqError::InvalidInput { .. }),
                "expected InvalidInput, got {err}"
            );
        }
    }

    #[test]
    fn bad_dram_bound_is_a_typed_error() {
        for bad in [0.0, -1.0, f64::NAN] {
            let err = SmConfig::volta_like().with_dram_bound(bad).unwrap_err();
            assert!(matches!(err, PacqError::InvalidInput { .. }), "{bad}");
        }
    }
}
