//! Machine configuration: the Volta-like streaming multiprocessor of
//! Table I.

use pacq_error::{PacqError, PacqResult};
use pacq_fp16::WeightPrecision;

/// Architecture variant under simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// Standard dequantization-based W16A16 flow (Figure 1(a)): packed INT
    /// weights are unpacked + dequantized to FP16 by the general core at
    /// the L1 boundary, then a plain FP16 GEMM runs on baseline tensor
    /// cores with weight-stationary tile movement.
    StandardDequant,
    /// Hyper-asymmetric GEMM with weights packed along k (`P(B_x)_k`):
    /// packed words travel into the tensor core, but k-alignment forces
    /// extra A fetches and operand-buffer evictions (Figure 4(a)–(b));
    /// weights are processed sequentially.
    PackedK,
    /// PacQ: weights packed along n (`P(B_x)_n`), output-stationary tile
    /// movement and compute, parallel FP-INT multipliers, Σ A accumulators
    /// with the Eq. (1) fixup in the general core.
    Pacq,
    /// Input-stationary hyper-asymmetric GEMM (`P(B_x)_k` packing with the
    /// activation tile held): A stays resident in the tensor-core operand
    /// buffers across the n loop, so each activation element is fetched
    /// from the RF exactly once — the dual of the `P(B_x)_k` A-refetch
    /// pathology — while packed-B words and C partial sums stream.
    InputStationary,
}

impl core::fmt::Display for Architecture {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Architecture::StandardDequant => f.write_str("Standard (dequant W16A16)"),
            Architecture::PackedK => f.write_str("P(B_x)_k hyper-asymmetric"),
            Architecture::Pacq => f.write_str("PacQ P(B_x)_n"),
            Architecture::InputStationary => f.write_str("Input-stationary P(B_x)_k"),
        }
    }
}

/// Streaming-multiprocessor configuration (Table I, bottom rows).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmConfig {
    /// Tensor cores per SM (Table I: 8).
    pub tensor_cores: usize,
    /// DP-4 units per tensor core (Table I: 4).
    pub dp_units_per_tc: usize,
    /// Dot-product unit width (4; Figure 12(a) studies 8 and 16).
    pub dp_width: usize,
    /// Adder-tree duplication in the PacQ DP units (2; Figure 11 ablation).
    pub adder_tree_duplication: usize,
    /// Operand buffer size in bits (Table I: 2 × 3072-bit).
    pub operand_buffer_bits: u64,
    /// Number of operand buffers per tensor core.
    pub operand_buffers: usize,
    /// Register file capacity in bytes (Table I: 256 KB).
    pub register_file_bytes: u64,
    /// Shared L1 capacity in bytes (Table I: 96 KB).
    pub l1_bytes: u64,
    /// General-core unpack+dequantize throughput in weights per SM cycle
    /// (StandardDequant only). Sets the dequantization overhead the paper
    /// attributes to the standard flow (§I challenge (2)). The default (8)
    /// equals the tensor cores' k-consumption rate at batch 16, matching
    /// the near-100% dequantization overhead measured for weight-only
    /// quantized kernels at small batch (AWQ, the paper’s ref. 10); at larger batches the
    /// overhead amortizes away, as on real GPUs.
    pub dequant_weights_per_cycle: f64,
    /// Clock frequency (400 MHz synthesis point).
    pub clock_hz: f64,
    /// DRAM bandwidth available to the SM in bytes per cycle, the
    /// roofline memory floor of the timing model. `f64::INFINITY`
    /// (the default) disables the floor — the paper's simulator tracks
    /// kernel cycles with operands staged on chip. Set it to a real
    /// figure (Volta-class: ~900 GB/s over 80 SMs ≈ 8 B/cycle/SM) for
    /// end-to-end studies; see `SmConfig::with_dram_bound`.
    pub dram_bytes_per_cycle: f64,
}

impl SmConfig {
    /// The Volta-like configuration of Table I.
    pub fn volta_like() -> Self {
        SmConfig {
            tensor_cores: 8,
            dp_units_per_tc: 4,
            dp_width: 4,
            adder_tree_duplication: 2,
            operand_buffer_bits: 3072,
            operand_buffers: 2,
            register_file_bytes: 256 * 1024,
            l1_bytes: 96 * 1024,
            dequant_weights_per_cycle: 8.0,
            clock_hz: 400.0e6,
            dram_bytes_per_cycle: f64::INFINITY,
        }
    }

    /// Enables the DRAM-bandwidth roofline floor at `bytes_per_cycle`.
    ///
    /// # Errors
    ///
    /// Returns [`PacqError::InvalidInput`] if `bytes_per_cycle` is not
    /// positive (NaN included).
    pub fn with_dram_bound(mut self, bytes_per_cycle: f64) -> PacqResult<Self> {
        if bytes_per_cycle <= 0.0 || bytes_per_cycle.is_nan() {
            return Err(PacqError::invalid_input(
                "SmConfig::with_dram_bound",
                format!("bandwidth must be positive, got {bytes_per_cycle}"),
            ));
        }
        self.dram_bytes_per_cycle = bytes_per_cycle;
        Ok(self)
    }

    /// Validates the configuration against the datapath's documented
    /// domains — called by the dataflow engines before simulating so a
    /// hand-built config cannot divide by zero mid-walk.
    ///
    /// # Errors
    ///
    /// Returns [`PacqError::InvalidInput`] naming the offending field.
    pub fn validate(&self) -> PacqResult<()> {
        if !matches!(self.dp_width, 4 | 8 | 16) {
            return Err(PacqError::invalid_input(
                "SmConfig",
                format!("dp_width must be 4, 8 or 16, got {}", self.dp_width),
            ));
        }
        if !matches!(self.adder_tree_duplication, 1 | 2 | 4) {
            return Err(PacqError::invalid_input(
                "SmConfig",
                format!(
                    "adder_tree_duplication must be 1, 2 or 4, got {}",
                    self.adder_tree_duplication
                ),
            ));
        }
        if self.tensor_cores == 0 || self.dp_units_per_tc == 0 {
            return Err(PacqError::invalid_input(
                "SmConfig",
                format!(
                    "tensor_cores ({}) and dp_units_per_tc ({}) must be non-zero",
                    self.tensor_cores, self.dp_units_per_tc
                ),
            ));
        }
        // NaN must fail too, so compare against the accepting range.
        if self.dequant_weights_per_cycle <= 0.0 || self.dequant_weights_per_cycle.is_nan() {
            return Err(PacqError::invalid_input(
                "SmConfig",
                format!(
                    "dequant_weights_per_cycle must be positive, got {}",
                    self.dequant_weights_per_cycle
                ),
            ));
        }
        Ok(())
    }

    /// Octets per warp (Figure 3(b)).
    pub const fn octets_per_warp(&self) -> usize {
        4
    }

    /// DP units serving one octet (Figure 3(d): two DP-4 per octet).
    pub const fn dp_units_per_octet(&self) -> usize {
        2
    }

    /// Tensor cores occupied by one warp: 4 octets × 2 DP-4 over
    /// `dp_units_per_tc`-wide tensor cores.
    pub fn tensor_cores_per_warp(&self) -> usize {
        (self.octets_per_warp() * self.dp_units_per_octet()).div_ceil(self.dp_units_per_tc)
    }

    /// Warps resident on the SM's tensor cores at once.
    pub fn concurrent_warps(&self) -> usize {
        (self.tensor_cores / self.tensor_cores_per_warp()).max(1)
    }

    /// Peak FP16 MAC throughput per SM cycle on the baseline units.
    pub fn baseline_macs_per_cycle(&self) -> f64 {
        (self.tensor_cores * self.dp_units_per_tc * self.dp_width) as f64
    }
}

impl Default for SmConfig {
    fn default() -> Self {
        Self::volta_like()
    }
}

/// The GEMM shape `C[m,n] = A[m,k] × B[k,n]` in the paper's `mXnYkZ`
/// notation (`m16n4096k4096` is a Llama2-7B FFN layer at batch 16).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmShape {
    /// Batch/output rows.
    pub m: usize,
    /// Output features.
    pub n: usize,
    /// Input features.
    pub k: usize,
}

impl GemmShape {
    /// Creates a shape.
    ///
    /// # Panics
    ///
    /// Panics if any extent is zero. Intended for literal shapes in
    /// code; use [`GemmShape::try_new`] for untrusted input.
    pub fn new(m: usize, n: usize, k: usize) -> Self {
        assert!(m > 0 && n > 0 && k > 0, "GEMM extents must be non-zero");
        GemmShape { m, n, k }
    }

    /// Creates a shape from untrusted extents, rejecting zeros with a
    /// typed error instead of panicking.
    pub fn try_new(m: usize, n: usize, k: usize) -> PacqResult<Self> {
        if m == 0 || n == 0 || k == 0 {
            return Err(PacqError::ZeroDim {
                context: "GemmShape::try_new",
            });
        }
        Ok(GemmShape { m, n, k })
    }

    /// The Figure 7 unit workload.
    pub const M16N16K16: GemmShape = GemmShape {
        m: 16,
        n: 16,
        k: 16,
    };

    /// Total multiply-accumulates.
    pub fn macs(&self) -> u64 {
        self.m as u64 * self.n as u64 * self.k as u64
    }

    /// Warp-level `mma.m16n16k16` instruction count (Figure 3(a)).
    pub fn warp_tiles(&self) -> u64 {
        (self.m.div_ceil(16) * self.n.div_ceil(16) * self.k.div_ceil(16)) as u64
    }

    /// `true` when every extent is 16-aligned (the engines assume this,
    /// like the paper's workloads).
    pub fn is_tile_aligned(&self) -> bool {
        self.m.is_multiple_of(16) && self.n.is_multiple_of(16) && self.k.is_multiple_of(16)
    }

    /// The shape rounded up to the warp-tile grid: every extent padded to
    /// the next multiple of 16. Ragged GEMMs execute as if zero-padded
    /// onto full `mma.m16n16k16` tiles — the hardware has no partial-tile
    /// path, so a ragged edge costs a full tile of movement and compute.
    /// Identity for tile-aligned shapes.
    pub fn padded_to_tiles(&self) -> GemmShape {
        GemmShape {
            m: self.m.next_multiple_of(16),
            n: self.n.next_multiple_of(16),
            k: self.k.next_multiple_of(16),
        }
    }
}

impl core::fmt::Display for GemmShape {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "m{}n{}k{}", self.m, self.n, self.k)
    }
}

/// Workload: a GEMM shape plus the weight precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Workload {
    /// The GEMM shape.
    pub shape: GemmShape,
    /// Weight precision (activations are always FP16).
    pub precision: WeightPrecision,
}

impl Workload {
    /// Creates a workload.
    pub fn new(shape: GemmShape, precision: WeightPrecision) -> Self {
        Workload { shape, precision }
    }
}

impl core::fmt::Display for Workload {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} {}", self.shape, self.precision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volta_like_matches_table_i() {
        let c = SmConfig::volta_like();
        assert_eq!(c.tensor_cores, 8);
        assert_eq!(c.dp_units_per_tc, 4);
        assert_eq!(c.register_file_bytes, 256 * 1024);
        assert_eq!(c.l1_bytes, 96 * 1024);
        assert_eq!(c.operand_buffer_bits, 3072);
        assert_eq!(c.operand_buffers, 2);
        assert_eq!(c.tensor_cores_per_warp(), 2);
        assert_eq!(c.concurrent_warps(), 4);
        assert_eq!(c.baseline_macs_per_cycle(), 128.0);
    }

    #[test]
    fn shape_arithmetic() {
        let s = GemmShape::new(16, 4096, 4096);
        assert_eq!(s.macs(), 16 * 4096 * 4096);
        assert_eq!(s.warp_tiles(), 256 * 256);
        assert!(s.is_tile_aligned());
        assert_eq!(s.to_string(), "m16n4096k4096");
        assert!(!GemmShape::new(8, 16, 16).is_tile_aligned());
    }

    #[test]
    fn padding_rounds_each_extent_up_to_the_tile_grid() {
        let ragged = GemmShape::new(3, 40, 17);
        let padded = ragged.padded_to_tiles();
        assert_eq!(padded, GemmShape::new(16, 48, 32));
        assert!(padded.is_tile_aligned());
        // Padding is idempotent and warp-tile counts agree before/after.
        assert_eq!(padded.padded_to_tiles(), padded);
        assert_eq!(ragged.warp_tiles(), padded.warp_tiles());
        let aligned = GemmShape::new(16, 4096, 4096);
        assert_eq!(aligned.padded_to_tiles(), aligned);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_extent_rejected() {
        GemmShape::new(0, 16, 16);
    }
}
