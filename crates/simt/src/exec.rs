//! Functional execution: the three flows computing real numbers through
//! the bit-accurate datapaths.
//!
//! The paper's simulator only tracks access patterns; this module
//! additionally *executes* each dataflow so the numeric behaviour of
//! PacQ's biased arithmetic can be compared against the dequantization
//! baseline (see the numerics finding in EXPERIMENTS.md).

use crate::config::Architecture;
use pacq_fp16::{
    BaselineDpUnit, Fp16, NumericsMode, PackedWord, ParallelDpUnit,
};
use pacq_quant::{MatrixF16, MatrixF32, PackDim, PackedMatrix};

/// Executes a GEMM functionally on the given architecture.
///
/// * `a` — FP16 activations `[m, k]`;
/// * `packed` — packed quantized weights `[k, n]`; must be packed along
///   `n` for [`Architecture::Pacq`] and along `k` for
///   [`Architecture::PackedK`] (any direction for the dequantization
///   baseline, which unpacks at the L1 boundary anyway);
/// * `numerics` — product-rounding behaviour of the PacQ datapath.
///
/// Returns `C = A × dequant(B)` in f32.
///
/// # Panics
///
/// Panics on dimension mismatch, a pack direction that contradicts the
/// architecture, or a group k-extent not aligned to the DP width.
pub fn execute(
    arch: Architecture,
    a: &MatrixF16,
    packed: &PackedMatrix,
    numerics: NumericsMode,
) -> MatrixF32 {
    assert_eq!(a.cols(), packed.k(), "A columns must equal B rows (k)");
    match arch {
        Architecture::StandardDequant => run_standard(a, packed),
        Architecture::PackedK => {
            assert_eq!(
                packed.pack_dim(),
                PackDim::K,
                "PackedK flow requires P(B_x)_k packing"
            );
            run_packed_k(a, packed)
        }
        Architecture::Pacq => {
            assert_eq!(
                packed.pack_dim(),
                PackDim::N,
                "PacQ flow requires P(B_x)_n packing"
            );
            run_pacq(a, packed, numerics)
        }
    }
}

/// The f64 oracle: `A × dequant(B)` with exact accumulation.
pub fn reference(a: &MatrixF16, packed: &PackedMatrix) -> MatrixF32 {
    let deq = packed.unpack().dequantize();
    a.to_f32().matmul(&deq)
}

const DP_WIDTH: usize = 4;

/// StandardDequant: weights dequantized to FP16 storage, then a plain
/// FP16 GEMM on the baseline DP units with f32 accumulation.
fn run_standard(a: &MatrixF16, packed: &PackedMatrix) -> MatrixF32 {
    let deq = packed.unpack().dequantize().to_f16();
    let dp = BaselineDpUnit::new(DP_WIDTH);
    let (m, n, k) = (a.rows(), packed.n(), packed.k());
    assert_eq!(k % DP_WIDTH, 0, "k must be a multiple of the DP width");

    let mut out = MatrixF32::zeros(m, n);
    let mut bcol = vec![Fp16::ZERO; DP_WIDTH];
    for i in 0..m {
        let arow = a.row(i);
        for j in 0..n {
            let mut acc = 0f32;
            for k0 in (0..k).step_by(DP_WIDTH) {
                for (t, b) in bcol.iter_mut().enumerate() {
                    *b = deq.get(k0 + t, j);
                }
                acc = dp.dot_acc(acc, &arow[k0..k0 + DP_WIDTH], &bcol);
            }
            out.set(i, j, acc);
        }
    }
    out
}

/// PackedK: packed words enter the tensor core; each weight is converted
/// inline to FP16 (exact for 4-bit signed integers) and processed
/// sequentially; group scales are applied per k-segment in the epilogue.
fn run_packed_k(a: &MatrixF16, packed: &PackedMatrix) -> MatrixF32 {
    let dp = BaselineDpUnit::new(DP_WIDTH);
    let (m, n, k) = (a.rows(), packed.n(), packed.k());
    let seg = packed.group().k_size.min(k);
    assert_eq!(seg % DP_WIDTH, 0, "group k-extent must align to the DP width");
    assert_eq!(k % seg, 0, "k must be a multiple of the group k-extent");

    let mut out = MatrixF32::zeros(m, n);
    let mut bcol = vec![Fp16::ZERO; DP_WIDTH];
    for i in 0..m {
        let arow = a.row(i);
        for j in 0..n {
            let mut acc = 0f64;
            for s0 in (0..k).step_by(seg) {
                let mut seg_acc = 0f32;
                let z = packed.zero_point(s0, j) as i32;
                let bias = packed.precision().bias();
                for k0 in (s0..s0 + seg).step_by(DP_WIDTH) {
                    for (t, b) in bcol.iter_mut().enumerate() {
                        // Inline conversion: the zero-point-corrected
                        // small integer (q − z) is exact in FP16.
                        let q = packed.code(k0 + t, j) as i32 + bias;
                        *b = Fp16::from_f32((q - z) as f32);
                    }
                    seg_acc = dp.dot_acc(seg_acc, &arow[k0..k0 + DP_WIDTH], &bcol);
                }
                acc += seg_acc as f64 * packed.scale(s0, j) as f64;
            }
            out.set(i, j, acc as f32);
        }
    }
    out
}

/// PacQ: activations stream through the parallel FP-INT multipliers
/// against n-packed words; the Σ A accumulators and the general core
/// remove the `+offset` bias per k-segment (Eq. (1), Figure 6) and apply
/// the group scales.
fn run_pacq(a: &MatrixF16, packed: &PackedMatrix, numerics: NumericsMode) -> MatrixF32 {
    let precision = packed.precision();
    let lanes = precision.lanes();
    let dp = ParallelDpUnit::new(DP_WIDTH, 2, precision).with_numerics(numerics);
    let (m, n, k) = (a.rows(), packed.n(), packed.k());
    let seg = packed.group().k_size.min(k);
    assert_eq!(seg % DP_WIDTH, 0, "group k-extent must align to the DP width");
    assert_eq!(k % seg, 0, "k must be a multiple of the group k-extent");

    let mut out = MatrixF32::zeros(m, n);
    let mut words = vec![PackedWord::default(); seg];
    let mut scales = vec![0f32; lanes];
    for i in 0..m {
        let arow = a.row(i);
        for wc in 0..packed.word_cols() {
            let n0 = wc * lanes;
            for s0 in (0..k).step_by(seg) {
                for (t, w) in words.iter_mut().enumerate() {
                    *w = packed.word(s0 + t, wc);
                }
                for (lane, s) in scales.iter_mut().enumerate() {
                    *s = packed.scale(s0, n0 + lane);
                }
                let res = dp.dot_packed(&arow[s0..s0 + seg], &words);
                // Eq. (1) recovery gives Σ A·(q − bias); asymmetric zero
                // points shift by (bias − z)·Σ A — absorbed by the same
                // Σ A accumulator at zero extra hardware.
                let bias = precision.bias();
                let recovered = res.recover();
                for (lane, r) in recovered.into_iter().enumerate() {
                    let z = packed.zero_point(s0, n0 + lane) as i32;
                    let v = (r as f64 + (bias - z) as f64 * res.sum_a) as f32
                        * scales[lane];
                    let cur = out.get(i, n0 + lane);
                    out.set(i, n0 + lane, cur + v);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacq_fp16::WeightPrecision;
    use pacq_quant::{synth::SynthGenerator, GroupShape, RtnQuantizer};

    fn setup(
        m: usize,
        n: usize,
        k: usize,
        precision: WeightPrecision,
        group: GroupShape,
        dim: PackDim,
    ) -> (MatrixF16, PackedMatrix) {
        let mut g = SynthGenerator::new(9);
        let a = g.llm_activations(m, k).to_f16();
        let w = g.llm_weights(k, n);
        let q = RtnQuantizer::new(precision, group).quantize(&w);
        (a, PackedMatrix::pack(&q, dim).expect("packs"))
    }

    fn rel_err(got: &MatrixF32, want: &MatrixF32) -> f64 {
        let diff = MatrixF32::from_fn(got.rows(), got.cols(), |r, c| {
            got.get(r, c) - want.get(r, c)
        });
        diff.frobenius_norm() / want.frobenius_norm().max(1e-12)
    }

    #[test]
    fn standard_flow_matches_reference() {
        let (a, p) = setup(4, 16, 64, WeightPrecision::Int4, GroupShape::along_k(32), PackDim::N);
        let got = execute(Architecture::StandardDequant, &a, &p, NumericsMode::PaperRounded);
        let want = reference(&a, &p);
        assert!(rel_err(&got, &want) < 2e-3);
    }

    #[test]
    fn packed_k_flow_matches_reference() {
        let (a, p) = setup(4, 16, 64, WeightPrecision::Int4, GroupShape::along_k(32), PackDim::K);
        let got = execute(Architecture::PackedK, &a, &p, NumericsMode::PaperRounded);
        let want = reference(&a, &p);
        assert!(rel_err(&got, &want) < 2e-3);
    }

    #[test]
    fn pacq_wide_matches_reference_tightly() {
        for precision in [WeightPrecision::Int4, WeightPrecision::Int2] {
            let (a, p) = setup(4, 16, 64, precision, GroupShape::along_k(32), PackDim::N);
            let got = execute(Architecture::Pacq, &a, &p, NumericsMode::Wide);
            let want = reference(&a, &p);
            let e = rel_err(&got, &want);
            assert!(e < 2e-3, "{precision}: rel err {e}");
        }
    }

    #[test]
    fn pacq_paper_rounded_shows_measurable_error() {
        // The reproduction's numerics finding: rounding the biased
        // products to FP16 leaves visible error after Eq. (1) recovery.
        let (a, p) = setup(4, 16, 64, WeightPrecision::Int4, GroupShape::along_k(32), PackDim::N);
        let rounded = execute(Architecture::Pacq, &a, &p, NumericsMode::PaperRounded);
        let want = reference(&a, &p);
        let e = rel_err(&rounded, &want);
        assert!(e > 1e-3, "expected visible biased-rounding error, got {e}");
        assert!(e < 0.6, "error should stay bounded, got {e}");
    }

    #[test]
    fn pacq_executes_asymmetric_quantization_exactly() {
        // The Σ A accumulator absorbs the zero point: PacQ's recovered
        // output matches the dequantized oracle for asymmetric codes too.
        let mut g = SynthGenerator::new(33);
        let a = g.llm_activations(4, 64).to_f16();
        // Skewed (strictly positive) weights where asymmetric wins.
        let w = pacq_quant::MatrixF32::from_fn(64, 16, |k, n| {
            0.2 + ((k * 5 + n * 3) % 17) as f32 / 40.0
        });
        let q = RtnQuantizer::asymmetric(WeightPrecision::Int4, GroupShape::along_k(32))
            .quantize(&w);
        let p = PackedMatrix::pack(&q, PackDim::N).expect("packs");
        let got = execute(Architecture::Pacq, &a, &p, NumericsMode::Wide);
        let want = reference(&a, &p);
        let e = rel_err(&got, &want);
        assert!(e < 2e-3, "asymmetric PacQ rel err {e}");
        // And the PackedK flow handles zero points too.
        let pk = PackedMatrix::pack(&q, PackDim::K).expect("packs");
        let got = execute(Architecture::PackedK, &a, &pk, NumericsMode::Wide);
        let e = rel_err(&got, &want);
        assert!(e < 2e-3, "asymmetric PackedK rel err {e}");
    }

    #[test]
    fn pacq_2d_groups_execute_correctly() {
        let (a, p) = setup(4, 16, 64, WeightPrecision::Int4, GroupShape::new(32, 4), PackDim::N);
        let got = execute(Architecture::Pacq, &a, &p, NumericsMode::Wide);
        let want = reference(&a, &p);
        assert!(rel_err(&got, &want) < 2e-3);
    }

    #[test]
    #[should_panic(expected = "requires P(B_x)_n")]
    fn pacq_rejects_k_packing() {
        let (a, p) = setup(4, 16, 64, WeightPrecision::Int4, GroupShape::along_k(32), PackDim::K);
        execute(Architecture::Pacq, &a, &p, NumericsMode::Wide);
    }

    #[test]
    #[should_panic(expected = "requires P(B_x)_k")]
    fn packed_k_rejects_n_packing() {
        let (a, p) = setup(4, 16, 64, WeightPrecision::Int4, GroupShape::along_k(32), PackDim::N);
        execute(Architecture::PackedK, &a, &p, NumericsMode::Wide);
    }
}
