//! Functional execution: the three flows computing real numbers through
//! the bit-accurate datapaths.
//!
//! The paper's simulator only tracks access patterns; this module
//! additionally *executes* each dataflow so the numeric behaviour of
//! PacQ's biased arithmetic can be compared against the dequantization
//! baseline (see the numerics finding in EXPERIMENTS.md).

//! # Parallel tiling
//!
//! All three flows (and the [`reference`] oracle) walk the output in
//! cache-blocked `(m, n)` tiles: bands of up to [`ROW_TILE`] rows are
//! fanned out across the rayon pool with `par_chunks_mut`, and inside a
//! band the columns are visited in [`COL_TILE`] blocks so the per-column
//! gather buffers stay hot while every row of the band reuses them.
//! Only whole output rows are distributed and the k-accumulation order
//! per element is untouched, so the result is bit-identical at any
//! thread count (`jobs = 1` and `jobs = N` agree to the last bit; see
//! the equivalence suite in `tests/parallel_equivalence.rs`).

use crate::config::Architecture;
use pacq_error::{PacqError, PacqResult};
use pacq_fp16::{
    Backend, BaselineDpUnit, BatchedBaselineDp, BatchedParallelDp, Fp16, NumericsMode, PackedWord,
    ParallelDpUnit, MAX_LANES,
};
use pacq_quant::{MatrixF16, MatrixF32, PackDim, PackedMatrix};
use rayon::prelude::*;

/// Executes a GEMM functionally on the given architecture through the
/// scalar reference datapaths (shorthand for [`execute_with_backend`]
/// at [`Backend::Scalar`]).
///
/// * `a` — FP16 activations `[m, k]`;
/// * `packed` — packed quantized weights `[k, n]`; must be packed along
///   `n` for [`Architecture::Pacq`] and along `k` for
///   [`Architecture::PackedK`] (any direction for the dequantization
///   baseline, which unpacks at the L1 boundary anyway);
/// * `numerics` — product-rounding behaviour of the PacQ datapath.
///
/// Returns `C = A × dequant(B)` in f32.
///
/// # Errors
///
/// Returns [`PacqError::ShapeMismatch`] on a dimension mismatch,
/// [`PacqError::InvalidInput`] for a pack direction that contradicts the
/// architecture, and [`PacqError::Misaligned`] for a k-extent or group
/// k-extent not aligned to the DP width.
pub fn execute(
    arch: Architecture,
    a: &MatrixF16,
    packed: &PackedMatrix,
    numerics: NumericsMode,
) -> PacqResult<MatrixF32> {
    execute_with_backend(arch, a, packed, numerics, Backend::Scalar)
}

/// [`execute`] with an explicit compute backend.
///
/// [`Backend::Scalar`] walks every element through the structural
/// datapath models; [`Backend::Batched`] runs the SoA fast path of
/// `pacq_fp16::batch` (table conversions, branch-free rounding, LUT
/// lane products). Both tile the output identically and preserve the
/// per-element accumulation order, so the backends are bit-identical —
/// the three-way equivalence suite in `tests/parallel_equivalence.rs`
/// pins scalar ≡ rayon ≡ batched on every flow.
///
/// # Errors
///
/// Exactly as [`execute`].
pub fn execute_with_backend(
    arch: Architecture,
    a: &MatrixF16,
    packed: &PackedMatrix,
    numerics: NumericsMode,
    backend: Backend,
) -> PacqResult<MatrixF32> {
    if a.cols() != packed.k() {
        return Err(PacqError::ShapeMismatch {
            context: "simt::execute (A columns vs B rows)",
            left: a.cols(),
            right: packed.k(),
        });
    }
    match arch {
        Architecture::StandardDequant => run_standard(a, packed, backend),
        Architecture::PackedK => {
            if packed.pack_dim() != PackDim::K {
                return Err(PacqError::invalid_input(
                    "simt::execute",
                    "PackedK flow requires P(B_x)_k packing",
                ));
            }
            run_packed_k(a, packed, backend)
        }
        Architecture::InputStationary => {
            // The input-stationary flow consumes the same k-packed words
            // through the same sequential datapath as `P(B_x)_k`; only
            // the operand *movement* differs, and re-ordering which tile
            // is held never changes the per-element k-accumulation order
            // — so the functional result is bit-identical to PackedK's.
            if packed.pack_dim() != PackDim::K {
                return Err(PacqError::invalid_input(
                    "simt::execute",
                    "input-stationary flow requires P(B_x)_k packing",
                ));
            }
            run_packed_k(a, packed, backend)
        }
        Architecture::Pacq => {
            if packed.pack_dim() != PackDim::N {
                return Err(PacqError::invalid_input(
                    "simt::execute",
                    "PacQ flow requires P(B_x)_n packing",
                ));
            }
            run_pacq(a, packed, numerics, backend)
        }
    }
}

/// The f64 oracle: `A × dequant(B)` with exact accumulation.
pub fn reference(a: &MatrixF16, packed: &PackedMatrix) -> MatrixF32 {
    let deq = packed.unpack().dequantize();
    a.to_f32().matmul(&deq)
}

const DP_WIDTH: usize = 4;

/// Upper bound on rows per parallel band (the m-extent of a tile).
const ROW_TILE: usize = 8;

/// Columns per tile pass inside a band (the n-extent of a tile).
const COL_TILE: usize = 64;

/// Rows per band: small enough to spread `m` over the pool, capped at
/// [`ROW_TILE`] so a band's activation rows stay cache-resident.
fn band_rows(m: usize) -> usize {
    m.div_ceil(rayon::current_num_threads().max(1))
        .clamp(1, ROW_TILE)
}

/// StandardDequant: weights dequantized to FP16 storage, then a plain
/// FP16 GEMM on the baseline DP units with f32 accumulation.
fn run_standard(a: &MatrixF16, packed: &PackedMatrix, backend: Backend) -> PacqResult<MatrixF32> {
    let deq = packed.unpack().dequantize().to_f16();
    let dp = BaselineDpUnit::new(DP_WIDTH)?;
    let bdp = BatchedBaselineDp::new(DP_WIDTH)?;
    let (m, n, k) = (a.rows(), packed.n(), packed.k());
    if k % DP_WIDTH != 0 {
        return Err(PacqError::Misaligned {
            context: "simt::execute (k vs DP width)",
            extent: k,
            multiple: DP_WIDTH,
        });
    }

    let mut out = MatrixF32::zeros(m, n);
    if m == 0 || n == 0 {
        return Ok(out);
    }
    let band = band_rows(m);
    out.as_mut_slice()
        .par_chunks_mut(n * band)
        .enumerate()
        .for_each(|(c, chunk)| {
            let i0 = c * band;
            let rows = chunk.len() / n;
            // Per-tile scratch: one dequantized B column, gathered once and
            // then streamed by every row of the band.
            let mut bcol = vec![Fp16::ZERO; k];
            for j0 in (0..n).step_by(COL_TILE) {
                for j in j0..(j0 + COL_TILE).min(n) {
                    for (t, b) in bcol.iter_mut().enumerate() {
                        *b = deq.get(t, j);
                    }
                    for r in 0..rows {
                        let arow = a.row(i0 + r);
                        chunk[r * n + j] = match backend {
                            Backend::Scalar => {
                                let mut acc = 0f32;
                                for k0 in (0..k).step_by(DP_WIDTH) {
                                    acc = dp.dot_acc(
                                        acc,
                                        &arow[k0..k0 + DP_WIDTH],
                                        &bcol[k0..k0 + DP_WIDTH],
                                    );
                                }
                                acc
                            }
                            Backend::Batched => bdp.dot_slice(0f32, arow, &bcol),
                        };
                    }
                }
            }
        });
    Ok(out)
}

/// PackedK: packed words enter the tensor core; each weight is converted
/// inline to FP16 (exact for 4-bit signed integers) and processed
/// sequentially; group scales are applied per k-segment in the epilogue.
fn run_packed_k(a: &MatrixF16, packed: &PackedMatrix, backend: Backend) -> PacqResult<MatrixF32> {
    let dp = BaselineDpUnit::new(DP_WIDTH)?;
    let bdp = BatchedBaselineDp::new(DP_WIDTH)?;
    let (m, n, k) = (a.rows(), packed.n(), packed.k());
    let seg = packed.group().k_size.min(k);
    if seg % DP_WIDTH != 0 {
        return Err(PacqError::Misaligned {
            context: "simt::execute (group k-extent vs DP width)",
            extent: seg,
            multiple: DP_WIDTH,
        });
    }
    if k % seg != 0 {
        return Err(PacqError::Misaligned {
            context: "simt::execute (k vs group k-extent)",
            extent: k,
            multiple: seg,
        });
    }
    let bias = packed.precision().bias();

    let mut out = MatrixF32::zeros(m, n);
    if m == 0 || n == 0 {
        return Ok(out);
    }
    let band = band_rows(m);
    out.as_mut_slice()
        .par_chunks_mut(n * band)
        .enumerate()
        .for_each(|(c, chunk)| {
            let i0 = c * band;
            let rows = chunk.len() / n;
            // Per-tile scratch: the zero-point-corrected column (exact in
            // FP16) and its per-segment scales, gathered once per column and
            // reused by every row of the band.
            let mut bcol = vec![Fp16::ZERO; k];
            let mut scales = vec![0f32; k / seg];
            for j0 in (0..n).step_by(COL_TILE) {
                for j in j0..(j0 + COL_TILE).min(n) {
                    for (s, s0) in (0..k).step_by(seg).enumerate() {
                        let z = packed.zero_point(s0, j) as i32;
                        scales[s] = packed.scale(s0, j);
                        for (t, b) in bcol[s0..s0 + seg].iter_mut().enumerate() {
                            // Inline conversion: the zero-point-corrected
                            // small integer (q − z) is exact in FP16.
                            let q = packed.code(s0 + t, j) as i32 + bias;
                            *b = Fp16::from_f32((q - z) as f32);
                        }
                    }
                    for r in 0..rows {
                        let arow = a.row(i0 + r);
                        let mut acc = 0f64;
                        for (s, s0) in (0..k).step_by(seg).enumerate() {
                            let seg_acc = match backend {
                                Backend::Scalar => {
                                    let mut seg_acc = 0f32;
                                    for k0 in (s0..s0 + seg).step_by(DP_WIDTH) {
                                        seg_acc = dp.dot_acc(
                                            seg_acc,
                                            &arow[k0..k0 + DP_WIDTH],
                                            &bcol[k0..k0 + DP_WIDTH],
                                        );
                                    }
                                    seg_acc
                                }
                                Backend::Batched => {
                                    bdp.dot_slice(0f32, &arow[s0..s0 + seg], &bcol[s0..s0 + seg])
                                }
                            };
                            acc += seg_acc as f64 * scales[s] as f64;
                        }
                        chunk[r * n + j] = acc as f32;
                    }
                }
            }
        });
    Ok(out)
}

/// PacQ: activations stream through the parallel FP-INT multipliers
/// against n-packed words; the Σ A accumulators and the general core
/// remove the `+offset` bias per k-segment (Eq. (1), Figure 6) and apply
/// the group scales.
fn run_pacq(
    a: &MatrixF16,
    packed: &PackedMatrix,
    numerics: NumericsMode,
    backend: Backend,
) -> PacqResult<MatrixF32> {
    let precision = packed.precision();
    let lanes = precision.lanes();
    let dp = ParallelDpUnit::new(DP_WIDTH, 2, precision)?.with_numerics(numerics);
    let bdp = BatchedParallelDp::new(DP_WIDTH, precision)?.with_numerics(numerics);
    let (m, n, k) = (a.rows(), packed.n(), packed.k());
    let seg = packed.group().k_size.min(k);
    if seg % DP_WIDTH != 0 {
        return Err(PacqError::Misaligned {
            context: "simt::execute (group k-extent vs DP width)",
            extent: seg,
            multiple: DP_WIDTH,
        });
    }
    if k % seg != 0 {
        return Err(PacqError::Misaligned {
            context: "simt::execute (k vs group k-extent)",
            extent: k,
            multiple: seg,
        });
    }
    let bias = precision.bias();
    let offset = precision.fp_offset();

    let mut out = MatrixF32::zeros(m, n);
    if m == 0 || n == 0 {
        return Ok(out);
    }
    let band = band_rows(m);
    out.as_mut_slice()
        .par_chunks_mut(n * band)
        .enumerate()
        .for_each(|(c, chunk)| {
            let i0 = c * band;
            let rows = chunk.len() / n;
            // Per-tile scratch: one word column's segment of packed words,
            // scales and zero points, gathered once and reused by every row
            // of the band; `lane_sums` is the allocation-free result buffer
            // of the value-only DP entry point.
            let mut words = vec![PackedWord::default(); seg];
            let mut scales = vec![0f32; lanes];
            let mut zps = vec![0i32; lanes];
            let mut lane_sums = [0f32; MAX_LANES];
            for wc in 0..packed.word_cols() {
                let n0 = wc * lanes;
                for s0 in (0..k).step_by(seg) {
                    for (t, w) in words.iter_mut().enumerate() {
                        *w = packed.word(s0 + t, wc);
                    }
                    for lane in 0..lanes {
                        scales[lane] = packed.scale(s0, n0 + lane);
                        zps[lane] = packed.zero_point(s0, n0 + lane) as i32;
                    }
                    for r in 0..rows {
                        let arow = a.row(i0 + r);
                        let sum_a = match backend {
                            Backend::Scalar => {
                                dp.dot_packed_into(&arow[s0..s0 + seg], &words, &mut lane_sums)
                            }
                            Backend::Batched => {
                                bdp.dot_packed_into(&arow[s0..s0 + seg], &words, &mut lane_sums)
                            }
                        };
                        // Eq. (1) recovery gives Σ A·(q − bias); asymmetric
                        // zero points shift by (bias − z)·Σ A — absorbed by
                        // the same Σ A accumulator at zero extra hardware.
                        // The f32 cast between the two steps mirrors
                        // `PackedDotResult::recover` bit for bit.
                        for lane in 0..lanes {
                            let rec = (lane_sums[lane] as f64 - offset as f64 * sum_a) as f32;
                            let v = (rec as f64 + (bias - zps[lane]) as f64 * sum_a) as f32
                                * scales[lane];
                            chunk[r * n + n0 + lane] += v;
                        }
                    }
                }
            }
        });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacq_fp16::WeightPrecision;
    use pacq_quant::{synth::SynthGenerator, GroupShape, RtnQuantizer};

    fn setup(
        m: usize,
        n: usize,
        k: usize,
        precision: WeightPrecision,
        group: GroupShape,
        dim: PackDim,
    ) -> (MatrixF16, PackedMatrix) {
        let mut g = SynthGenerator::new(9);
        let a = g.llm_activations(m, k).to_f16();
        let w = g.llm_weights(k, n);
        let q = RtnQuantizer::new(precision, group).quantize(&w).unwrap();
        (a, PackedMatrix::pack(&q, dim).expect("packs"))
    }

    fn rel_err(got: &MatrixF32, want: &MatrixF32) -> f64 {
        let diff = MatrixF32::from_fn(got.rows(), got.cols(), |r, c| {
            got.get(r, c) - want.get(r, c)
        });
        diff.frobenius_norm() / want.frobenius_norm().max(1e-12)
    }

    #[test]
    fn standard_flow_matches_reference() {
        let (a, p) = setup(
            4,
            16,
            64,
            WeightPrecision::Int4,
            GroupShape::along_k(32),
            PackDim::N,
        );
        let got = execute(
            Architecture::StandardDequant,
            &a,
            &p,
            NumericsMode::PaperRounded,
        )
        .unwrap();
        let want = reference(&a, &p);
        assert!(rel_err(&got, &want) < 2e-3);
    }

    #[test]
    fn packed_k_flow_matches_reference() {
        let (a, p) = setup(
            4,
            16,
            64,
            WeightPrecision::Int4,
            GroupShape::along_k(32),
            PackDim::K,
        );
        let got = execute(Architecture::PackedK, &a, &p, NumericsMode::PaperRounded).unwrap();
        let want = reference(&a, &p);
        assert!(rel_err(&got, &want) < 2e-3);
    }

    #[test]
    fn pacq_wide_matches_reference_tightly() {
        for precision in [WeightPrecision::Int4, WeightPrecision::Int2] {
            let (a, p) = setup(4, 16, 64, precision, GroupShape::along_k(32), PackDim::N);
            let got = execute(Architecture::Pacq, &a, &p, NumericsMode::Wide).unwrap();
            let want = reference(&a, &p);
            let e = rel_err(&got, &want);
            assert!(e < 2e-3, "{precision}: rel err {e}");
        }
    }

    #[test]
    fn pacq_paper_rounded_shows_measurable_error() {
        // The reproduction's numerics finding: rounding the biased
        // products to FP16 leaves visible error after Eq. (1) recovery.
        let (a, p) = setup(
            4,
            16,
            64,
            WeightPrecision::Int4,
            GroupShape::along_k(32),
            PackDim::N,
        );
        let rounded = execute(Architecture::Pacq, &a, &p, NumericsMode::PaperRounded).unwrap();
        let want = reference(&a, &p);
        let e = rel_err(&rounded, &want);
        assert!(e > 1e-3, "expected visible biased-rounding error, got {e}");
        assert!(e < 0.6, "error should stay bounded, got {e}");
    }

    #[test]
    fn pacq_executes_asymmetric_quantization_exactly() {
        // The Σ A accumulator absorbs the zero point: PacQ's recovered
        // output matches the dequantized oracle for asymmetric codes too.
        let mut g = SynthGenerator::new(33);
        let a = g.llm_activations(4, 64).to_f16();
        // Skewed (strictly positive) weights where asymmetric wins.
        let w = pacq_quant::MatrixF32::from_fn(64, 16, |k, n| {
            0.2 + ((k * 5 + n * 3) % 17) as f32 / 40.0
        });
        let q = RtnQuantizer::asymmetric(WeightPrecision::Int4, GroupShape::along_k(32))
            .quantize(&w)
            .unwrap();
        let p = PackedMatrix::pack(&q, PackDim::N).expect("packs");
        let got = execute(Architecture::Pacq, &a, &p, NumericsMode::Wide).unwrap();
        let want = reference(&a, &p);
        let e = rel_err(&got, &want);
        assert!(e < 2e-3, "asymmetric PacQ rel err {e}");
        // And the PackedK flow handles zero points too.
        let pk = PackedMatrix::pack(&q, PackDim::K).expect("packs");
        let got = execute(Architecture::PackedK, &a, &pk, NumericsMode::Wide).unwrap();
        let e = rel_err(&got, &want);
        assert!(e < 2e-3, "asymmetric PackedK rel err {e}");
    }

    #[test]
    fn pacq_2d_groups_execute_correctly() {
        let (a, p) = setup(
            4,
            16,
            64,
            WeightPrecision::Int4,
            GroupShape::new(32, 4),
            PackDim::N,
        );
        let got = execute(Architecture::Pacq, &a, &p, NumericsMode::Wide).unwrap();
        let want = reference(&a, &p);
        assert!(rel_err(&got, &want) < 2e-3);
    }

    #[test]
    fn pacq_rejects_k_packing() {
        let (a, p) = setup(
            4,
            16,
            64,
            WeightPrecision::Int4,
            GroupShape::along_k(32),
            PackDim::K,
        );
        let err = execute(Architecture::Pacq, &a, &p, NumericsMode::Wide).unwrap_err();
        assert!(err.to_string().contains("requires P(B_x)_n"));
    }

    #[test]
    fn packed_k_rejects_n_packing() {
        let (a, p) = setup(
            4,
            16,
            64,
            WeightPrecision::Int4,
            GroupShape::along_k(32),
            PackDim::N,
        );
        let err = execute(Architecture::PackedK, &a, &p, NumericsMode::Wide).unwrap_err();
        assert!(err.to_string().contains("requires P(B_x)_k"));
    }

    #[test]
    fn mismatched_activation_width_is_a_typed_error() {
        let (_, p) = setup(
            4,
            16,
            64,
            WeightPrecision::Int4,
            GroupShape::along_k(32),
            PackDim::N,
        );
        let narrow = SynthGenerator::new(10).llm_activations(4, 32).to_f16();
        let err = execute(Architecture::Pacq, &narrow, &p, NumericsMode::Wide).unwrap_err();
        assert!(matches!(err, PacqError::ShapeMismatch { .. }));
    }
}
