//! Event-driven octet pipeline: a second, finer-grained simulator that
//! executes the Figure 3 schedule cycle by cycle with explicit operand
//! buffers, fetch-port contention and issue intervals.
//!
//! The analytic engine in [`crate::dataflow`] folds the per-step loop
//! into closed-form counts; this module *replays* the same schedule
//! event by event, so the two can be checked against each other
//! (`tests::event_matches_analytic_*`). It also exposes a cycle-resolved
//! trace for inspecting stalls, which the analytic model cannot provide.

use crate::config::{Architecture, SmConfig};
use crate::stats::RfTraffic;
use pacq_fp16::WeightPrecision;

/// What one fetch instruction moves from the register file into an
/// operand buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchKind {
    /// Activation sub-tile (2×w elements; two of these per A tile).
    ATile {
        /// Elements moved.
        elements: u64,
    },
    /// Weight tile: FP16 elements or packed words.
    BTile {
        /// RF reads performed (elements or words).
        reads: u64,
        /// Bits moved.
        bits: u64,
    },
    /// Partial-sum read (weight-stationary movement only).
    CRead {
        /// Elements read.
        elements: u64,
    },
    /// Partial-sum / result write.
    CWrite {
        /// Elements written.
        elements: u64,
    },
}

/// One compute step of the octet schedule.
#[derive(Debug, Clone)]
pub struct ScheduleStep {
    /// Fetch instructions that must complete before the step issues.
    pub fetches: Vec<FetchKind>,
    /// Number of DP issues this step makes (per DP unit).
    pub issues: u64,
    /// Issue interval of each issue (cycles the DP is occupied).
    pub issue_interval: u64,
    /// A-buffer evictions this step forces (the Figure 4(b) pathology of
    /// k-packed processing): one per output column whose processing
    /// displaces the aligned A sub-tile — 4 per step for `P(B_x)_k`,
    /// 0 for the other flows.
    pub a_evictions: u64,
}

/// Cycle-resolved result of replaying a schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineTrace {
    /// Total cycles from first fetch to last writeback.
    pub cycles: u64,
    /// Cycles the DP units sat idle waiting for operands.
    pub fetch_stall_cycles: u64,
    /// Register-file traffic replayed from the fetches.
    pub rf: RfTraffic,
    /// Operand-buffer fills.
    pub buffer_fills: u64,
    /// Forced operand-buffer evictions.
    pub buffer_evictions: u64,
    /// Fetch instructions issued.
    pub fetch_instructions: u64,
}

/// One cycle-resolved event from a traced replay — the raw material of
/// the Chrome-trace export (`pacq trace`): a fetch occupying a
/// register-file port, a compute issue occupying the octet's DP units,
/// or a forced A-buffer eviction (zero-width marker).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineEvent {
    /// What happened: `"A fetch"`, `"B fetch"`, `"C read"`, `"C write"`,
    /// `"compute"`, or `"evict A"`.
    pub kind: &'static str,
    /// Lane the event occupies: fetch-port index for fetches, one lane
    /// past the ports for compute, another for eviction markers.
    pub lane: u64,
    /// Start cycle.
    pub start: u64,
    /// Duration in cycles (fetches take 1; compute `issues ×
    /// issue_interval`; evictions 0).
    pub dur: u64,
}

/// The event-driven octet pipeline.
///
/// `fetch_ports` register-file read ports serve fetch instructions (one
/// instruction per port per cycle); the two operand buffers of Table I
/// allow the next step's fetches to overlap the current step's compute
/// (double buffering).
#[derive(Debug, Clone, Copy)]
pub struct OctetPipeline {
    fetch_ports: u64,
    pipeline_tail: u64,
}

impl OctetPipeline {
    /// A pipeline with the default port count (3; enough that the
    /// baseline flows are compute-bound, matching the paper's speedups —
    /// see DESIGN.md).
    pub fn new() -> Self {
        OctetPipeline {
            fetch_ports: 3,
            pipeline_tail: 3,
        }
    }

    /// Overrides the fetch-port count (for stall studies).
    pub fn with_fetch_ports(mut self, ports: u64) -> Self {
        assert!(ports > 0, "need at least one fetch port");
        self.fetch_ports = ports;
        self
    }

    /// Replays a schedule and returns the trace.
    pub fn run(&self, schedule: &[ScheduleStep]) -> PipelineTrace {
        self.replay(schedule, None)
    }

    /// Replays a schedule and additionally returns the cycle-resolved
    /// event list — same arbitration, bit-identical [`PipelineTrace`].
    pub fn run_traced(&self, schedule: &[ScheduleStep]) -> (PipelineTrace, Vec<PipelineEvent>) {
        let mut events = Vec::new();
        let trace = self.replay(schedule, Some(&mut events));
        (trace, events)
    }

    fn replay(
        &self,
        schedule: &[ScheduleStep],
        mut events: Option<&mut Vec<PipelineEvent>>,
    ) -> PipelineTrace {
        let _span = pacq_trace::span("simt.pipeline.replay");
        let mut trace = PipelineTrace::default();
        // Cycle from which the current step may begin (its fetches can
        // overlap earlier compute thanks to the double buffers).
        let mut cycle: u64 = 0;
        // Earliest cycle the DP units are free.
        let mut dp_free: u64 = 0;
        // Fetch-port arbitration: `used` instructions already issued in
        // `fetch_cycle`.
        let mut fetch_cycle: u64 = 0;
        let mut used: u64 = 0;

        for step in schedule {
            let mut step_ready = cycle;
            for fetch in &step.fetches {
                if fetch_cycle < cycle {
                    fetch_cycle = cycle;
                    used = 0;
                }
                if used >= self.fetch_ports {
                    fetch_cycle += 1;
                    used = 0;
                }
                used += 1;
                let done = fetch_cycle + 1; // 1-cycle RF access
                step_ready = step_ready.max(done);
                trace.fetch_instructions += 1;
                self.account(fetch, &mut trace);
                if let Some(out) = events.as_deref_mut() {
                    out.push(PipelineEvent {
                        kind: fetch_kind_name(fetch),
                        lane: used - 1,
                        start: fetch_cycle,
                        dur: 1,
                    });
                }
            }

            // DP issues wait for operands and the previous issue, but a
            // step with no compute (pure writeback) does not hold the DP.
            if step.issues > 0 {
                let issue_start = dp_free.max(step_ready.saturating_sub(1));
                if issue_start > dp_free {
                    trace.fetch_stall_cycles += issue_start - dp_free;
                }
                if let Some(out) = events.as_deref_mut() {
                    out.push(PipelineEvent {
                        kind: "compute",
                        lane: self.fetch_ports,
                        start: issue_start,
                        dur: step.issues * step.issue_interval,
                    });
                }
                dp_free = issue_start + step.issues * step.issue_interval;
                cycle = issue_start;
            }

            if step.a_evictions > 0 {
                trace.buffer_evictions += step.a_evictions;
                if let Some(out) = events.as_deref_mut() {
                    out.push(PipelineEvent {
                        kind: "evict A",
                        lane: self.fetch_ports + 1,
                        start: cycle,
                        dur: 0,
                    });
                }
            }
        }
        trace.cycles = dp_free + self.pipeline_tail;
        pacq_trace::add_counter("simt.pipeline.replays", 1);
        pacq_trace::add_counter("simt.pipeline.cycles", trace.cycles);
        trace
    }

    fn account(&self, fetch: &FetchKind, trace: &mut PipelineTrace) {
        match *fetch {
            FetchKind::ATile { elements } => {
                trace.rf.a_reads += elements;
                trace.rf.a_bits += elements * 16;
                trace.buffer_fills += 1;
            }
            FetchKind::BTile { reads, bits } => {
                trace.rf.b_reads += reads;
                trace.rf.b_bits += bits;
                trace.buffer_fills += 1;
            }
            FetchKind::CRead { elements } => {
                trace.rf.c_reads += elements;
                trace.rf.c_bits += elements * 16;
            }
            FetchKind::CWrite { elements } => {
                trace.rf.c_writes += elements;
                trace.rf.c_bits += elements * 16;
            }
        }
    }
}

impl Default for OctetPipeline {
    fn default() -> Self {
        Self::new()
    }
}

/// Display name of a fetch kind for traces.
fn fetch_kind_name(fetch: &FetchKind) -> &'static str {
    match fetch {
        FetchKind::ATile { .. } => "A fetch",
        FetchKind::BTile { .. } => "B fetch",
        FetchKind::CRead { .. } => "C read",
        FetchKind::CWrite { .. } => "C write",
    }
}

/// Builds the per-octet schedule of one warp tile (`mma.m16n16k16`) for
/// the given architecture — the explicit loop nest the analytic engine
/// folds.
pub fn octet_schedule(
    arch: Architecture,
    precision: WeightPrecision,
    config: &SmConfig,
) -> Vec<ScheduleStep> {
    let w = config.dp_width as u64;
    let lanes = precision.lanes() as u64;
    let dup = config.adder_tree_duplication as u64;
    let mt = 2u64; // 8 m / 4
    let nt = 2u64; // 8 n / 4
    let kt = 16 / w;

    let mut steps = Vec::new();
    match arch {
        Architecture::StandardDequant => {
            // Movement nt { kt { mt } }, FP16 operands.
            for _n in 0..nt {
                for k in 0..kt {
                    for _m in 0..mt {
                        let mut fetches = vec![
                            FetchKind::ATile { elements: 2 * w },
                            FetchKind::ATile { elements: 2 * w },
                        ];
                        if _m == 0 {
                            // B tile fetched once per (nt, kt), held
                            // across the m loop.
                            fetches.push(FetchKind::BTile {
                                reads: w * 4,
                                bits: w * 4 * 16,
                            });
                        } else {
                            // Refetch-free reuse, but the schedule still
                            // carries a B descriptor with zero traffic.
                        }
                        if k > 0 {
                            fetches.push(FetchKind::CRead { elements: 16 });
                        }
                        fetches.push(FetchKind::CWrite { elements: 16 });
                        steps.push(ScheduleStep {
                            fetches,
                            issues: 16 / config.dp_units_per_octet() as u64,
                            issue_interval: 1,
                            a_evictions: 0,
                        });
                    }
                }
            }
        }
        Architecture::PackedK => {
            for _n in 0..nt {
                for k in 0..kt {
                    for _m in 0..mt {
                        let mut fetches = Vec::new();
                        // Per output column: `lanes`-aligned A fetches
                        // (Figure 4(a)) re-loading the 4m × w sub-tile.
                        for _col in 0..4 {
                            for _i in 0..lanes.min(w) {
                                fetches.push(FetchKind::ATile {
                                    elements: 4 * w / lanes.min(w),
                                });
                            }
                        }
                        if _m == 0 {
                            let words = 4 * w / lanes.clamp(1, 16);
                            fetches.push(FetchKind::BTile {
                                reads: words.max(1),
                                bits: words.max(1) * 16,
                            });
                        }
                        if k > 0 {
                            fetches.push(FetchKind::CRead { elements: 16 });
                        }
                        fetches.push(FetchKind::CWrite { elements: 16 });
                        steps.push(ScheduleStep {
                            fetches,
                            issues: 16 / config.dp_units_per_octet() as u64,
                            issue_interval: 1,
                            // Figure 4(b): each of the 4 output columns
                            // displaces the aligned A sub-tile.
                            a_evictions: 4,
                        });
                    }
                }
            }
        }
        Architecture::InputStationary => {
            // Movement mt { kt { nt } }: the two A sub-tile fetches land
            // on the first n step of each (mt, kt) and the filled buffers
            // stay resident across the n loop; one packed-B fetch streams
            // every step; C moves exactly as in the weight-stationary
            // flows (read past each tile's first k-slice, written every
            // step).
            for _m in 0..mt {
                for k in 0..kt {
                    for n in 0..nt {
                        let mut fetches = Vec::new();
                        if n == 0 {
                            fetches.push(FetchKind::ATile { elements: 2 * w });
                            fetches.push(FetchKind::ATile { elements: 2 * w });
                        }
                        // One packed word covers `lanes` k-values of one
                        // output column → 4 × max(1, w/lanes) word reads
                        // per step.
                        let words = 4 * w.div_ceil(lanes);
                        fetches.push(FetchKind::BTile {
                            reads: words,
                            bits: words * 16,
                        });
                        if k > 0 {
                            fetches.push(FetchKind::CRead { elements: 16 });
                        }
                        fetches.push(FetchKind::CWrite { elements: 16 });
                        steps.push(ScheduleStep {
                            fetches,
                            issues: 16 / config.dp_units_per_octet() as u64,
                            issue_interval: 1,
                            a_evictions: 0,
                        });
                    }
                }
            }
        }
        Architecture::Pacq => {
            let word_cols = (8 / lanes).max(1);
            for _m in 0..mt {
                for _wc in 0..word_cols {
                    for _k in 0..kt {
                        let fetches = vec![
                            FetchKind::ATile { elements: 2 * w },
                            FetchKind::ATile { elements: 2 * w },
                            FetchKind::BTile {
                                reads: w,
                                bits: w * 16,
                            },
                        ];
                        steps.push(ScheduleStep {
                            fetches,
                            issues: 4 / config.dp_units_per_octet() as u64,
                            issue_interval: lanes.div_ceil(dup).max(1),
                            a_evictions: 0,
                        });
                    }
                    // Tile retires: single C writeback from accumulators.
                    steps.push(ScheduleStep {
                        fetches: vec![FetchKind::CWrite {
                            elements: 4 * lanes.min(8),
                        }],
                        issues: 0,
                        issue_interval: 0,
                        a_evictions: 0,
                    });
                }
            }
        }
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GemmShape, Workload};
    use crate::dataflow::simulate;
    use pacq_quant::GroupShape;

    fn event_trace(arch: Architecture, precision: WeightPrecision) -> PipelineTrace {
        let cfg = SmConfig::volta_like();
        let schedule = octet_schedule(arch, precision, &cfg);
        OctetPipeline::new().run(&schedule)
    }

    fn analytic(arch: Architecture, precision: WeightPrecision) -> crate::stats::GemmStats {
        let cfg = SmConfig::volta_like();
        simulate(
            arch,
            Workload::new(GemmShape::M16N16K16, precision),
            &cfg,
            GroupShape::along_k(16),
        )
        .unwrap()
    }

    /// The event-driven replay reproduces the analytic per-octet counts
    /// exactly (scaled by 4 octets × 1 warp tile) — not just RF traffic
    /// but every audited counter. The buffer-fill and fetch-instruction
    /// closed forms historically over/under-counted against the replayed
    /// schedule (Standard: B counted per step instead of per (nt, kt);
    /// PackedK: A refills not counted as fills); this test pins the
    /// reconciled forms.
    #[test]
    fn event_matches_analytic_rf_traffic() {
        for precision in [WeightPrecision::Int4, WeightPrecision::Int2] {
            for arch in [
                Architecture::StandardDequant,
                Architecture::PackedK,
                Architecture::Pacq,
                Architecture::InputStationary,
            ] {
                let t = event_trace(arch, precision);
                let a = analytic(arch, precision);
                assert_eq!(
                    t.rf.a_reads * 4,
                    a.rf.a_reads,
                    "{arch:?}/{precision}: A reads"
                );
                assert_eq!(
                    t.rf.b_reads * 4,
                    a.rf.b_reads,
                    "{arch:?}/{precision}: B reads"
                );
                assert_eq!(
                    t.rf.c_reads * 4,
                    a.rf.c_reads,
                    "{arch:?}/{precision}: C reads"
                );
                assert_eq!(
                    t.rf.c_writes * 4,
                    a.rf.c_writes,
                    "{arch:?}/{precision}: C writes"
                );
                assert_eq!(t.rf.a_bits * 4, a.rf.a_bits, "{arch:?}/{precision}: A bits");
                assert_eq!(t.rf.b_bits * 4, a.rf.b_bits, "{arch:?}/{precision}: B bits");
                assert_eq!(t.rf.c_bits * 4, a.rf.c_bits, "{arch:?}/{precision}: C bits");
                assert_eq!(
                    t.buffer_fills * 4,
                    a.buffer_fills,
                    "{arch:?}/{precision}: buffer fills"
                );
                assert_eq!(
                    t.buffer_evictions * 4,
                    a.buffer_evictions,
                    "{arch:?}/{precision}: buffer evictions"
                );
                assert_eq!(
                    t.fetch_instructions * 4,
                    a.fetch_instructions,
                    "{arch:?}/{precision}: fetch instructions"
                );
            }
        }
    }

    /// The replayed counters stay in lockstep with the analytic model on
    /// ragged shapes too: the analytic engine pads onto the tile grid,
    /// so per-octet replay × octets(padded) covers the ragged GEMM.
    #[test]
    fn event_matches_analytic_on_ragged_shapes() {
        let cfg = SmConfig::volta_like();
        for precision in [WeightPrecision::Int4, WeightPrecision::Int2] {
            for arch in [
                Architecture::StandardDequant,
                Architecture::PackedK,
                Architecture::Pacq,
                Architecture::InputStationary,
            ] {
                for shape in [GemmShape::new(3, 40, 17), GemmShape::new(24, 48, 48)] {
                    let t = OctetPipeline::new().run(&octet_schedule(arch, precision, &cfg));
                    let a = simulate(
                        arch,
                        Workload::new(shape, precision),
                        &cfg,
                        GroupShape::along_k(16),
                    )
                    .unwrap();
                    let octets = shape.padded_to_tiles().warp_tiles() * 4;
                    assert_eq!(t.rf.a_reads * octets, a.rf.a_reads, "{arch:?}/{shape}: A");
                    assert_eq!(t.rf.b_reads * octets, a.rf.b_reads, "{arch:?}/{shape}: B");
                    assert_eq!(
                        t.buffer_fills * octets,
                        a.buffer_fills,
                        "{arch:?}/{shape}: fills"
                    );
                    assert_eq!(
                        t.buffer_evictions * octets,
                        a.buffer_evictions,
                        "{arch:?}/{shape}: evictions"
                    );
                    assert_eq!(
                        t.fetch_instructions * octets,
                        a.fetch_instructions,
                        "{arch:?}/{shape}: fetches"
                    );
                }
            }
        }
    }

    /// `run_traced` returns the bit-identical trace plus a consistent
    /// event list: one event per fetch/compute/eviction, none extending
    /// past the measured cycle count.
    #[test]
    fn traced_replay_is_bit_identical() {
        let cfg = SmConfig::volta_like();
        for precision in [WeightPrecision::Int4, WeightPrecision::Int2] {
            for arch in [
                Architecture::StandardDequant,
                Architecture::PackedK,
                Architecture::Pacq,
                Architecture::InputStationary,
            ] {
                let schedule = octet_schedule(arch, precision, &cfg);
                let plain = OctetPipeline::new().run(&schedule);
                let (traced, events) = OctetPipeline::new().run_traced(&schedule);
                assert_eq!(plain, traced, "{arch:?}/{precision}");
                let fetches = events.iter().filter(|e| e.kind.contains("fetch")).count()
                    + events.iter().filter(|e| e.kind.starts_with('C')).count();
                assert_eq!(fetches as u64, traced.fetch_instructions);
                let computes = events.iter().filter(|e| e.kind == "compute").count();
                assert_eq!(computes, schedule.iter().filter(|s| s.issues > 0).count());
                for e in &events {
                    assert!(
                        e.start + e.dur <= traced.cycles,
                        "{arch:?}: event {e:?} past end {}",
                        traced.cycles
                    );
                }
            }
        }
    }

    /// Event-driven cycle counts agree with the analytic model within
    /// the pipeline-fill slack (the analytic model adds a fixed tail).
    #[test]
    fn event_matches_analytic_cycles() {
        for precision in [WeightPrecision::Int4, WeightPrecision::Int2] {
            for arch in [
                Architecture::StandardDequant,
                Architecture::PackedK,
                Architecture::Pacq,
                Architecture::InputStationary,
            ] {
                let t = event_trace(arch, precision);
                let a = analytic(arch, precision);
                let analytic_cycles = a.tc_cycles; // one warp tile, one wave
                let diff = t.cycles.abs_diff(analytic_cycles);
                assert!(
                    diff <= 8,
                    "{arch:?}/{precision}: event {} vs analytic {}",
                    t.cycles,
                    analytic_cycles
                );
            }
        }
    }

    /// With too few fetch ports the k-packed flow becomes fetch-bound —
    /// the stall the Figure 4(a) extra fetch instructions threaten.
    #[test]
    fn packed_k_stalls_with_one_fetch_port() {
        let cfg = SmConfig::volta_like();
        let schedule = octet_schedule(Architecture::PackedK, WeightPrecision::Int4, &cfg);
        let starved = OctetPipeline::new().with_fetch_ports(1).run(&schedule);
        let fed = OctetPipeline::new().run(&schedule);
        assert!(
            starved.fetch_stall_cycles > fed.fetch_stall_cycles,
            "starved {} vs fed {}",
            starved.fetch_stall_cycles,
            fed.fetch_stall_cycles
        );
        assert!(starved.cycles > fed.cycles);
    }

    /// PacQ issues far fewer fetch instructions than the k-packed flow.
    #[test]
    fn pacq_issues_fewer_fetch_instructions() {
        let pk = event_trace(Architecture::PackedK, WeightPrecision::Int4);
        let pq = event_trace(Architecture::Pacq, WeightPrecision::Int4);
        assert!(pq.fetch_instructions * 3 < pk.fetch_instructions);
    }

    /// Event/analytic agreement holds at every DP width (Figure 12(a)'s
    /// machine variants).
    #[test]
    fn event_matches_analytic_across_dp_widths() {
        for width in [4usize, 8, 16] {
            let mut cfg = SmConfig::volta_like();
            cfg.dp_width = width;
            for arch in [
                Architecture::StandardDequant,
                Architecture::PackedK,
                Architecture::Pacq,
                Architecture::InputStationary,
            ] {
                let schedule = octet_schedule(arch, WeightPrecision::Int4, &cfg);
                let t = OctetPipeline::new().run(&schedule);
                let a = simulate(
                    arch,
                    Workload::new(GemmShape::M16N16K16, WeightPrecision::Int4),
                    &cfg,
                    GroupShape::along_k(16),
                )
                .unwrap();
                assert_eq!(t.rf.a_reads * 4, a.rf.a_reads, "{arch:?} DP-{width}: A");
                assert_eq!(t.rf.b_reads * 4, a.rf.b_reads, "{arch:?} DP-{width}: B");
                let diff = t.cycles.abs_diff(a.tc_cycles);
                assert!(
                    diff <= 8,
                    "{arch:?} DP-{width}: {} vs {}",
                    t.cycles,
                    a.tc_cycles
                );
            }
        }
    }

    /// Evictions appear only in the k-packed schedule.
    #[test]
    fn only_packed_k_evicts() {
        for precision in [WeightPrecision::Int4, WeightPrecision::Int2] {
            assert_eq!(
                event_trace(Architecture::StandardDequant, precision).buffer_evictions,
                0
            );
            assert!(event_trace(Architecture::PackedK, precision).buffer_evictions > 0);
            assert_eq!(
                event_trace(Architecture::Pacq, precision).buffer_evictions,
                0
            );
            assert_eq!(
                event_trace(Architecture::InputStationary, precision).buffer_evictions,
                0
            );
        }
    }
}
