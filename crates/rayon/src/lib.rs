//! Offline drop-in subset of the `rayon` API.
//!
//! Hermetic build environments cannot fetch crates.io dependencies, so
//! the workspace carries its own work-stealing-free data-parallelism
//! layer with rayon's call shapes (see `DESIGN.md` §8). It covers
//! exactly what the PacQ hot paths use:
//!
//! * `slice.par_chunks_mut(n).enumerate().for_each(..)` — the GEMM /
//!   quantizer row fan-out,
//! * `vec.into_par_iter().map(..).collect::<Vec<_>>()` and the same on
//!   `Range<usize>` — order-preserving sweep fan-out,
//! * [`ThreadPoolBuilder`] / [`current_num_threads`] — the `--jobs`
//!   knob.
//!
//! Parallelism is plain `std::thread::scope` over contiguous blocks: the
//! item list is split into one block per worker, each worker runs its
//! block **in order**, and `collect` re-assembles blocks in block order.
//! Results are therefore position-stable: every item is computed by
//! exactly the same code as the serial path and lands in the same slot,
//! which is what the workspace's bit-identical-under-`--jobs` guarantee
//! rests on.
//!
//! Unlike upstream rayon, [`ThreadPoolBuilder::build_global`] here is
//! idempotent and re-configurable — tests toggle the worker count
//! between cases to prove serial/parallel equivalence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Configured global worker count; 0 means "not set, use the host".
static NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Errors from [`ThreadPoolBuilder::build_global`] (never produced by
/// this shim; the signature matches upstream so call sites can `?`/log).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("global thread pool configuration failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for the global worker configuration.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder with the default (host) worker count.
    pub fn new() -> Self {
        ThreadPoolBuilder { num_threads: 0 }
    }

    /// Sets the worker count; 0 restores the host default.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Installs this configuration globally.
    ///
    /// Idempotent and re-configurable (unlike upstream rayon), so tests
    /// can flip between worker counts.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        NUM_THREADS.store(self.num_threads, Ordering::SeqCst);
        Ok(())
    }
}

/// The number of workers parallel operations will fan out to.
pub fn current_num_threads() -> usize {
    match NUM_THREADS.load(Ordering::SeqCst) {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
}

/// Splits `items` into one contiguous block per worker, maps each block
/// on its own scoped thread, and re-concatenates the per-block outputs
/// in block order. Falls back to a plain in-place loop when one worker
/// (or one item) makes threading pure overhead.
fn map_blocks<I, O, F>(items: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let workers = current_num_threads().max(1).min(items.len().max(1));
    if workers <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Ceiling split keeps blocks contiguous and within one of each other
    // in size.
    let block = items.len().div_ceil(workers);
    let mut blocks: Vec<Vec<I>> = Vec::with_capacity(workers);
    let mut rest = items;
    while rest.len() > block {
        let tail = rest.split_off(block);
        blocks.push(rest);
        rest = tail;
    }
    blocks.push(rest);

    let f = &f;
    let mut out: Vec<Vec<O>> = Vec::with_capacity(blocks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = blocks
            .into_iter()
            .map(|b| scope.spawn(move || b.into_iter().map(f).collect::<Vec<O>>()))
            .collect();
        for h in handles {
            match h.join() {
                Ok(v) => out.push(v),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out.into_iter().flatten().collect()
}

/// Conversion into a parallel iterator (rayon's entry-point trait).
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Runs each item through `f` on the worker pool.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// An owning parallel iterator over a materialized item list.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps each item through `f` in parallel.
    pub fn map<O, F>(self, f: F) -> ParMap<T, F>
    where
        O: Send,
        F: Fn(T) -> O + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` for each item.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        map_blocks(self.items, f);
    }
}

/// A mapped parallel iterator; terminal `collect` preserves input order.
pub struct ParMap<T: Send, F> {
    items: Vec<T>,
    f: F,
}

impl<T, O, F> ParMap<T, F>
where
    T: Send,
    O: Send,
    F: Fn(T) -> O + Sync,
{
    /// Collects results in input order.
    pub fn collect<C: From<Vec<O>>>(self) -> C {
        C::from(map_blocks(self.items, self.f))
    }
}

/// `par_chunks_mut` on mutable slices (rayon's `ParallelSliceMut`).
pub trait ParallelSliceMut<T: Send> {
    /// Splits the slice into disjoint `chunk_size` chunks processed in
    /// parallel.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParChunksMut {
            chunks: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// Parallel iterator over disjoint mutable chunks of a slice.
pub struct ParChunksMut<'a, T: Send> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs each chunk with its index (chunk 0 starts at slice offset
    /// `0`, chunk `i` at `i * chunk_size`).
    pub fn enumerate(self) -> ParEnumChunksMut<'a, T> {
        ParEnumChunksMut {
            chunks: self.chunks,
        }
    }

    /// Runs `f` over every chunk on the worker pool.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        map_blocks(self.chunks, f);
    }
}

/// Enumerated variant of [`ParChunksMut`].
pub struct ParEnumChunksMut<'a, T: Send> {
    chunks: Vec<&'a mut [T]>,
}

impl<T: Send> ParEnumChunksMut<'_, T> {
    /// Runs `f` over every `(index, chunk)` pair on the worker pool.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        map_blocks(self.chunks.into_iter().enumerate().collect(), |(i, c)| {
            f((i, c))
        });
    }
}

/// The glob-import surface (`use rayon::prelude::*`).
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    fn with_workers<R>(n: usize, f: impl FnOnce() -> R) -> R {
        ThreadPoolBuilder::new()
            .num_threads(n)
            .build_global()
            .unwrap();
        let r = f();
        ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .unwrap();
        r
    }

    #[test]
    fn map_collect_preserves_order() {
        for workers in [1, 2, 3, 8] {
            let got: Vec<usize> = with_workers(workers, || {
                (0..103usize).into_par_iter().map(|i| i * i).collect()
            });
            let want: Vec<usize> = (0..103).map(|i| i * i).collect();
            assert_eq!(got, want, "workers={workers}");
        }
    }

    #[test]
    fn par_chunks_mut_touches_every_element_once() {
        for workers in [1, 2, 5] {
            let mut data = vec![0u32; 97];
            with_workers(workers, || {
                data.par_chunks_mut(8).enumerate().for_each(|(i, chunk)| {
                    for (j, v) in chunk.iter_mut().enumerate() {
                        *v = (i * 8 + j) as u32 + 1;
                    }
                });
            });
            let want: Vec<u32> = (1..=97).collect();
            assert_eq!(data, want, "workers={workers}");
        }
    }

    #[test]
    fn vec_into_par_iter_collect_roundtrip() {
        let items: Vec<String> = (0..17).map(|i| format!("s{i}")).collect();
        let got: Vec<String> = with_workers(4, || {
            items.clone().into_par_iter().map(|s| s + "!").collect()
        });
        let want: Vec<String> = items.into_iter().map(|s| s + "!").collect();
        assert_eq!(got, want);
    }

    #[test]
    fn current_num_threads_tracks_builder() {
        with_workers(6, || assert_eq!(current_num_threads(), 6));
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let got: Vec<usize> = Vec::<usize>::new().into_par_iter().map(|i| i).collect();
        assert!(got.is_empty());
        let mut empty: [u8; 0] = [];
        empty.par_chunks_mut(4).for_each(|_| unreachable!());
    }
}
