//! # pacq-error — the workspace-wide typed error layer
//!
//! Every public fallible API in the pacq workspace returns
//! [`Result<T, PacqError>`](PacqResult) instead of panicking. The
//! hierarchy is deliberately small: one enum whose variants map 1:1
//! onto the classes of malformed input a long-running serving stack
//! must survive, plus [`ArtifactError`] for the on-disk artifact
//! decoder. The CLI maps each class to a distinct nonzero exit code
//! via [`PacqError::exit_code`]:
//!
//! | exit code | class | variants |
//! |---|---|---|
//! | 2 | usage / argv | [`PacqError::Usage`] |
//! | 3 | shape contract | [`PacqError::ZeroDim`], [`PacqError::ShapeMismatch`], [`PacqError::Misaligned`] |
//! | 4 | numeric domain | [`PacqError::InvalidInput`], [`PacqError::NonFinite`], [`PacqError::EmptySearchSpace`], [`PacqError::NotPositiveDefinite`] |
//! | 5 | artifact decode | [`PacqError::Artifact`] |
//! | 6 | filesystem / OS | [`PacqError::Io`] |
//! | 7 | audit divergence | [`PacqError::AuditMismatch`] |
//! | 8 | serve protocol | [`PacqError::Protocol`], [`PacqError::QueueFull`], [`PacqError::RateLimited`] |
//! | 9 | architecture template | [`PacqError::Template`] |
//!
//! The no-panic contract is enforced statically — the library crates
//! deny `clippy::unwrap_used` / `expect_used` / `panic` outside tests —
//! and dynamically by the `tests/fault_injection.rs` proptest suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

use std::fmt;

/// Shorthand for `Result<T, PacqError>` used across the workspace.
pub type PacqResult<T> = Result<T, PacqError>;

/// A failure while decoding a serialized quantization artifact.
///
/// Produced by `pacq_quant::artifact::from_bytes`; every truncation or
/// bit-flip of a valid artifact decodes to one of these, never a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactError {
    /// The leading magic bytes are not `PACQ`.
    BadMagic,
    /// The format version byte is not one this build understands.
    BadVersion(u8),
    /// A header or payload field holds an out-of-contract value.
    BadField(&'static str),
    /// The byte stream ended before the encoded length was reached.
    Truncated,
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::BadMagic => write!(f, "bad magic (expected `PACQ`)"),
            ArtifactError::BadVersion(v) => write!(f, "unsupported artifact version {v}"),
            ArtifactError::BadField(field) => write!(f, "invalid field `{field}`"),
            ArtifactError::Truncated => write!(f, "truncated artifact"),
        }
    }
}

impl std::error::Error for ArtifactError {}

/// The unified error type of the pacq workspace.
///
/// Variants are grouped into four classes — usage, shape contract,
/// numeric domain, artifact decode — each with its own CLI exit code
/// (see [`PacqError::exit_code`]). `context` fields name the API that
/// rejected the input so a one-line diagnostic is self-locating.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PacqError {
    /// Malformed command line: unknown flag, bad flag value, missing
    /// argument. The CLI prints usage after this one.
    Usage {
        /// What was wrong with the invocation.
        message: String,
    },
    /// A dimension that must be positive was zero.
    ZeroDim {
        /// The API and dimension that rejected the input.
        context: &'static str,
    },
    /// Two extents that must agree did not.
    ShapeMismatch {
        /// The API and pair of extents being reconciled.
        context: &'static str,
        /// The extent on the left-hand side of the contract.
        left: usize,
        /// The extent on the right-hand side of the contract.
        right: usize,
    },
    /// An extent violated an alignment/divisibility requirement.
    Misaligned {
        /// The API and extent that rejected the input.
        context: &'static str,
        /// The offending extent.
        extent: usize,
        /// The required divisor.
        multiple: usize,
    },
    /// A parameter was outside its documented domain (wrong pack
    /// dimension, unsupported width, non-positive damping, ...).
    InvalidInput {
        /// The API that rejected the input.
        context: &'static str,
        /// What the domain is and what was received.
        message: String,
    },
    /// An input that must be finite contained NaN or ±Inf.
    NonFinite {
        /// The API and operand that rejected the input.
        context: &'static str,
    },
    /// A search was asked to pick a best element from an empty space
    /// (e.g. an empty AWQ alpha grid).
    EmptySearchSpace {
        /// The search that had nothing to search.
        context: &'static str,
    },
    /// Cholesky factorization hit a non-positive pivot: the (damped)
    /// GPTQ Hessian is not positive definite.
    NotPositiveDefinite {
        /// Index of the first pivot whose square went non-positive.
        pivot: usize,
    },
    /// A serialized artifact failed to decode.
    Artifact(
        /// The decoder-level cause.
        ArtifactError,
    ),
    /// A filesystem or OS operation failed (writing a metrics manifest,
    /// a Chrome trace, a VCD dump, ...).
    Io {
        /// The API that attempted the operation.
        context: &'static str,
        /// The OS-level cause, flattened to one line.
        message: String,
    },
    /// A malformed `pacq-serve/v1` frame: not a JSON object, missing the
    /// `op` field, an unknown operation, or a frame exceeding the size
    /// cap. The server answers these with a typed error frame and keeps
    /// the connection alive; the CLI maps them to exit code 8.
    Protocol {
        /// The protocol layer that rejected the frame.
        context: &'static str,
        /// What was wrong with the frame.
        message: String,
    },
    /// The server's bounded request queue was full: explicit
    /// backpressure instead of unbounded memory growth. Clients should
    /// retry after draining in-flight replies.
    QueueFull {
        /// The configured queue capacity that was exhausted.
        capacity: usize,
    },
    /// A client exceeded its per-connection admission rate: the
    /// server's token bucket for that peer ran dry. Like
    /// [`PacqError::QueueFull`] this is explicit backpressure, not a
    /// protocol violation — the connection stays open and the client
    /// should slow down and retry.
    RateLimited {
        /// The sustained per-client rate (requests/second) configured
        /// on the server.
        rate: u64,
        /// The burst allowance (bucket capacity) that was exhausted.
        burst: u64,
    },
    /// A declarative architecture template (`pacq-arch/v1`) failed
    /// validation: wrong schema tag, a malformed or unknown field, an
    /// inconsistent memory hierarchy (e.g. an L1 cheaper to read than
    /// the register file), or a dataflow/packing combination the
    /// simulator does not model. Produced by `pacq_arch::ArchTemplate`;
    /// the CLI maps it to exit code 9.
    Template {
        /// The template file or API that rejected the input.
        context: String,
        /// What the schema contract is and what was received.
        message: String,
    },
    /// The self-audit found two models of the same run disagreeing:
    /// an event-replay counter diverged from its analytic closed form,
    /// or an energy total from its component BOM sum.
    AuditMismatch {
        /// The audited quantity (first diverging counter), dotted by
        /// subsystem — e.g. `rf.b_reads`, `energy.total_pj`.
        counter: String,
        /// The case being audited (shape, dataflow, precision).
        case: String,
        /// Value from the event-driven replay / measured side.
        observed: String,
        /// Value from the analytic closed form / expected side.
        expected: String,
    },
}

impl PacqError {
    /// Convenience constructor for [`PacqError::Usage`].
    pub fn usage(message: impl Into<String>) -> Self {
        PacqError::Usage {
            message: message.into(),
        }
    }

    /// Convenience constructor for [`PacqError::InvalidInput`].
    pub fn invalid_input(context: &'static str, message: impl Into<String>) -> Self {
        PacqError::InvalidInput {
            context,
            message: message.into(),
        }
    }

    /// Convenience constructor for [`PacqError::Protocol`].
    pub fn protocol(context: &'static str, message: impl Into<String>) -> Self {
        PacqError::Protocol {
            context,
            message: message.into(),
        }
    }

    /// Convenience constructor for [`PacqError::Template`].
    pub fn template(context: impl Into<String>, message: impl Into<String>) -> Self {
        PacqError::Template {
            context: context.into(),
            message: message.into(),
        }
    }

    /// The process exit code the CLI uses for this error class.
    ///
    /// Distinct nonzero codes per class so scripted callers can tell a
    /// typo (2) from a bad model shape (3), a numeric-domain violation
    /// (4) or a corrupt artifact (5) without parsing stderr.
    pub fn exit_code(&self) -> u8 {
        match self {
            PacqError::Usage { .. } => 2,
            PacqError::ZeroDim { .. }
            | PacqError::ShapeMismatch { .. }
            | PacqError::Misaligned { .. } => 3,
            PacqError::InvalidInput { .. }
            | PacqError::NonFinite { .. }
            | PacqError::EmptySearchSpace { .. }
            | PacqError::NotPositiveDefinite { .. } => 4,
            PacqError::Artifact(_) => 5,
            PacqError::Io { .. } => 6,
            PacqError::AuditMismatch { .. } => 7,
            PacqError::Protocol { .. }
            | PacqError::QueueFull { .. }
            | PacqError::RateLimited { .. } => 8,
            PacqError::Template { .. } => 9,
        }
    }

    /// The stable wire token for this error's class, used by the
    /// `pacq-serve/v1` error frame so scripted clients can dispatch on
    /// the class without parsing the human-readable message.
    pub fn class(&self) -> &'static str {
        match self {
            PacqError::Usage { .. } => "usage",
            PacqError::ZeroDim { .. }
            | PacqError::ShapeMismatch { .. }
            | PacqError::Misaligned { .. } => "shape",
            PacqError::InvalidInput { .. }
            | PacqError::NonFinite { .. }
            | PacqError::EmptySearchSpace { .. }
            | PacqError::NotPositiveDefinite { .. } => "domain",
            PacqError::Artifact(_) => "artifact",
            PacqError::Io { .. } => "io",
            PacqError::AuditMismatch { .. } => "audit",
            PacqError::Protocol { .. } => "protocol",
            PacqError::QueueFull { .. } => "queue_full",
            PacqError::RateLimited { .. } => "rate_limited",
            PacqError::Template { .. } => "template",
        }
    }

    /// True for errors that should be followed by a usage blurb.
    pub fn is_usage(&self) -> bool {
        matches!(self, PacqError::Usage { .. })
    }
}

impl fmt::Display for PacqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacqError::Usage { message } => write!(f, "{message}"),
            PacqError::ZeroDim { context } => {
                write!(f, "{context}: dimension must be non-zero")
            }
            PacqError::ShapeMismatch {
                context,
                left,
                right,
            } => write!(f, "{context}: extents disagree ({left} vs {right})"),
            PacqError::Misaligned {
                context,
                extent,
                multiple,
            } => write!(
                f,
                "{context}: extent {extent} is not a multiple of {multiple}"
            ),
            PacqError::InvalidInput { context, message } => write!(f, "{context}: {message}"),
            PacqError::NonFinite { context } => {
                write!(f, "{context}: input contains NaN or infinite values")
            }
            PacqError::EmptySearchSpace { context } => {
                write!(f, "{context}: search space is empty")
            }
            PacqError::NotPositiveDefinite { pivot } => write!(
                f,
                "Hessian is not positive definite (pivot {pivot} went non-positive); \
                 increase damping or provide more calibration rows"
            ),
            PacqError::Artifact(e) => write!(f, "artifact decode failed: {e}"),
            PacqError::Io { context, message } => write!(f, "{context}: {message}"),
            PacqError::Protocol { context, message } => write!(f, "{context}: {message}"),
            PacqError::QueueFull { capacity } => write!(
                f,
                "request queue is full ({capacity} pending); retry after draining replies"
            ),
            PacqError::RateLimited { rate, burst } => write!(
                f,
                "client exceeded admission rate ({rate} req/s, burst {burst}); slow down and retry"
            ),
            PacqError::Template { context, message } => {
                write!(f, "{context}: {message}")
            }
            PacqError::AuditMismatch {
                counter,
                case,
                observed,
                expected,
            } => write!(
                f,
                "audit mismatch in `{counter}` for {case}: observed {observed}, expected {expected}"
            ),
        }
    }
}

impl std::error::Error for PacqError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PacqError::Artifact(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ArtifactError> for PacqError {
    fn from(e: ArtifactError) -> Self {
        PacqError::Artifact(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_per_class() {
        let usage = PacqError::usage("bad flag");
        let zero = PacqError::ZeroDim { context: "t" };
        let mismatch = PacqError::ShapeMismatch {
            context: "t",
            left: 1,
            right: 2,
        };
        let misaligned = PacqError::Misaligned {
            context: "t",
            extent: 7,
            multiple: 16,
        };
        let domain = PacqError::invalid_input("t", "bad");
        let artifact = PacqError::from(ArtifactError::BadMagic);
        let io = PacqError::Io {
            context: "t",
            message: "disk full".to_string(),
        };
        let audit = PacqError::AuditMismatch {
            counter: "rf.b_reads".to_string(),
            case: "m=16 n=16 k=16 int4 pacq".to_string(),
            observed: "1".to_string(),
            expected: "2".to_string(),
        };
        assert_eq!(usage.exit_code(), 2);
        assert_eq!(zero.exit_code(), 3);
        assert_eq!(mismatch.exit_code(), 3);
        assert_eq!(misaligned.exit_code(), 3);
        assert_eq!(domain.exit_code(), 4);
        assert_eq!(artifact.exit_code(), 5);
        assert_eq!(io.exit_code(), 6);
        assert_eq!(audit.exit_code(), 7);
        let protocol = PacqError::protocol("serve", "missing `op`");
        let full = PacqError::QueueFull { capacity: 64 };
        let limited = PacqError::RateLimited { rate: 10, burst: 4 };
        assert_eq!(protocol.exit_code(), 8);
        assert_eq!(full.exit_code(), 8);
        assert_eq!(limited.exit_code(), 8);
        let template = PacqError::template("arch.toml", "schema must be pacq-arch/v1");
        assert_eq!(template.exit_code(), 9);
        assert_eq!(template.class(), "template");
        assert!(!template.is_usage());
        assert!(usage.is_usage());
        assert!(!artifact.is_usage());
        assert!(!audit.is_usage());
        assert!(!protocol.is_usage());
    }

    #[test]
    fn class_tokens_are_stable_and_distinct_per_class() {
        let cases = [
            (PacqError::usage("x"), "usage"),
            (PacqError::ZeroDim { context: "t" }, "shape"),
            (PacqError::invalid_input("t", "bad"), "domain"),
            (PacqError::from(ArtifactError::Truncated), "artifact"),
            (
                PacqError::Io {
                    context: "t",
                    message: "gone".to_string(),
                },
                "io",
            ),
            (
                PacqError::AuditMismatch {
                    counter: "c".to_string(),
                    case: "x".to_string(),
                    observed: "1".to_string(),
                    expected: "2".to_string(),
                },
                "audit",
            ),
            (PacqError::protocol("serve", "bad frame"), "protocol"),
            (PacqError::QueueFull { capacity: 4 }, "queue_full"),
            (PacqError::RateLimited { rate: 5, burst: 2 }, "rate_limited"),
        ];
        for (error, token) in &cases {
            assert_eq!(error.class(), *token, "{error}");
        }
        // Tokens within one exit-code class may differ (protocol vs
        // queue_full vs rate_limited all exit 8 but clients must tell
        // them apart).
        assert_ne!(
            PacqError::protocol("serve", "x").class(),
            PacqError::QueueFull { capacity: 1 }.class()
        );
        assert_ne!(
            PacqError::QueueFull { capacity: 1 }.class(),
            PacqError::RateLimited { rate: 1, burst: 1 }.class()
        );
    }

    #[test]
    fn queue_full_names_the_capacity() {
        let line = PacqError::QueueFull { capacity: 128 }.to_string();
        assert!(line.contains("128"), "{line}");
        assert!(!line.contains('\n'));
    }

    #[test]
    fn rate_limited_names_rate_and_burst() {
        let line = PacqError::RateLimited { rate: 25, burst: 7 }.to_string();
        assert!(line.contains("25"), "{line}");
        assert!(line.contains("7"), "{line}");
        assert!(!line.contains('\n'));
    }

    #[test]
    fn audit_mismatch_names_the_diverging_counter() {
        let e = PacqError::AuditMismatch {
            counter: "buffer_fills".to_string(),
            case: "m=24 n=40 k=48 int2 packed_k".to_string(),
            observed: "264".to_string(),
            expected: "96".to_string(),
        };
        let line = e.to_string();
        assert!(line.contains("buffer_fills"), "{line}");
        assert!(line.contains("264"), "{line}");
        assert!(line.contains("96"), "{line}");
        assert!(!line.contains('\n'));
    }

    #[test]
    fn displays_are_one_line() {
        let errors = [
            PacqError::usage("unknown flag `--frobnicate`"),
            PacqError::ZeroDim { context: "rtn" },
            PacqError::NonFinite { context: "awq" },
            PacqError::EmptySearchSpace { context: "awq" },
            PacqError::NotPositiveDefinite { pivot: 3 },
            PacqError::Artifact(ArtifactError::BadVersion(9)),
            PacqError::Artifact(ArtifactError::Truncated),
            PacqError::Artifact(ArtifactError::BadField("pack_dim")),
        ];
        for e in errors {
            let line = e.to_string();
            assert!(!line.is_empty());
            assert!(!line.contains('\n'), "multi-line Display: {line:?}");
        }
    }

    #[test]
    fn error_source_chains_to_artifact_cause() {
        use std::error::Error as _;
        let e = PacqError::from(ArtifactError::Truncated);
        assert!(e.source().is_some());
        assert!(PacqError::usage("x").source().is_none());
    }

    #[test]
    fn pivot_is_preserved() {
        let e = PacqError::NotPositiveDefinite { pivot: 42 };
        assert!(e.to_string().contains("pivot 42"));
    }
}
