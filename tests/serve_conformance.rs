//! Differential conformance suite for the `pacq-serve/v1` server
//! (ISSUE 5, DESIGN.md §13): for randomized `(shape, precision,
//! architecture, group, dup, width)` requests, the server's JSON report
//! must be **bit-identical** — u64 counters and exact float bits — to
//!
//! 1. [`GemmRunner::analyze`] called in-process (no server, no cache),
//! 2. the same request served again from a **warm cache** (byte-for-byte
//!    identical reply), and
//! 3. the one-shot CLI path (`pacq analyze --json` equals
//!    [`pacq::cli::report_json`] of the in-process report).
//!
//! The random stream is seeded by property name (the in-tree proptest
//! shim's `TestRng`), so every run checks the same ≥200 requests and a
//! failure reproduces exactly.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use pacq::cli;
use pacq::{Architecture, GemmRunner, GemmShape, ReportCache, ServeOptions, Server, Workload};
use pacq_cache::CachedReport;
use pacq_fp16::WeightPrecision;
use pacq_quant::GroupShape;
use pacq_simt::SmConfig;
use pacq_trace::Json;
use proptest::test_runner::TestRng;

/// How many randomized requests the differential sweep checks
/// (each one twice: cold cache, then warm).
const REQUESTS: usize = 220;

/// One randomized request and the CLI/runner configuration it implies.
#[derive(Debug, Clone)]
struct Case {
    shape: GemmShape,
    arch: Architecture,
    arch_token: &'static str,
    precision: WeightPrecision,
    precision_token: &'static str,
    group: GroupShape,
    group_token: String,
    dup: usize,
    width: usize,
}

fn random_case(rng: &mut TestRng) -> Case {
    // Shapes stay small so 2 × 220 analyses run in seconds; ragged
    // extents are included (the zero-padding path must serve exactly
    // like the aligned one) by sometimes skipping 16-alignment…
    // except `pacq analyze --shape` *requires* 16-aligned extents, so
    // the differential-vs-CLI sweep sticks to the CLI's domain.
    let dim = |rng: &mut TestRng, span: usize| 16 * (1 + rng.index(span));
    let shape = GemmShape::new(dim(rng, 3), dim(rng, 8), dim(rng, 8));
    let (arch, arch_token) = [
        (Architecture::StandardDequant, "std"),
        (Architecture::PackedK, "packedk"),
        (Architecture::Pacq, "pacq"),
    ][rng.index(3)];
    let (precision, precision_token) = [
        (WeightPrecision::Int4, "int4"),
        (WeightPrecision::Int2, "int2"),
    ][rng.index(2)];
    let (group, group_token) = match rng.index(4) {
        0 => (GroupShape::G128, "g128".to_string()),
        1 => (GroupShape::G256, "g256".to_string()),
        2 => (GroupShape::G32X4, "g32x4".to_string()),
        _ => (GroupShape::along_k(64), "g64".to_string()),
    };
    let dup = [1usize, 2, 4][rng.index(3)];
    let width = [4usize, 8, 16][rng.index(3)];
    Case {
        shape,
        arch,
        arch_token,
        precision,
        precision_token,
        group,
        group_token,
        dup,
        width,
    }
}

impl Case {
    fn shape_token(&self) -> String {
        format!("m{}n{}k{}", self.shape.m, self.shape.n, self.shape.k)
    }

    /// The request frame for this case.
    fn frame(&self, id: usize) -> String {
        format!(
            concat!(
                "{{\"op\":\"analyze\",\"id\":{},\"shape\":\"{}\",\"arch\":\"{}\",",
                "\"precision\":\"{}\",\"group\":\"{}\",\"dup\":{},\"width\":{}}}"
            ),
            id,
            self.shape_token(),
            self.arch_token,
            self.precision_token,
            self.group_token,
            self.dup,
            self.width,
        )
    }

    /// The equivalently-configured in-process runner (no cache).
    fn runner(&self) -> GemmRunner {
        let mut cfg = SmConfig::volta_like();
        cfg.adder_tree_duplication = self.dup;
        cfg.dp_width = self.width;
        GemmRunner::new().with_config(cfg).with_group(self.group)
    }

    fn workload(&self) -> Workload {
        Workload::new(self.shape, self.precision)
    }
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "pacq-serve-conformance-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// A minimal NDJSON client: send one line, read one line.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.addr()).expect("connect to serve");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client {
            reader,
            writer: stream,
        }
    }

    fn roundtrip(&mut self, frame: &str) -> String {
        self.writer
            .write_all(frame.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .expect("send frame");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read reply");
        assert!(line.ends_with('\n'), "reply must be a full line: {line:?}");
        line.trim_end().to_string()
    }
}

/// The whole differential sweep runs against one server so the warm
/// pass genuinely exercises the shared cache.
#[test]
fn server_cli_and_runner_agree_bit_exactly_cold_and_warm() {
    let dir = scratch_dir("diff");
    let cache = Arc::new(ReportCache::open(&dir).expect("open cache"));
    let server = Server::bind(
        "127.0.0.1:0",
        ServeOptions {
            queue_capacity: 16,
            workers: 2,
            ..ServeOptions::default()
        },
        Some(Arc::clone(&cache)),
    )
    .expect("bind server");

    let mut rng = TestRng::for_property("serve_conformance::differential");
    let cases: Vec<Case> = (0..REQUESTS).map(|_| random_case(&mut rng)).collect();

    let mut client = Client::connect(&server);
    let mut cold_replies = Vec::with_capacity(cases.len());
    for (id, case) in cases.iter().enumerate() {
        cold_replies.push(client.roundtrip(&case.frame(id)));
    }
    let cold_misses = cache.misses();
    assert!(
        cache.hits() < cold_misses,
        "cold pass must be miss-dominated ({} hits / {cold_misses} misses)",
        cache.hits(),
    );

    // Warm pass: same frames, same connection order — every reply must
    // be byte-identical and the store must answer from memory.
    for (id, case) in cases.iter().enumerate() {
        let warm = client.roundtrip(&case.frame(id));
        assert_eq!(
            warm, cold_replies[id],
            "case {id} ({case:?}): warm reply drifted from cold"
        );
    }
    assert_eq!(
        cache.misses(),
        cold_misses,
        "the warm pass must not recompute anything"
    );
    assert!(
        cache.hits() >= REQUESTS as u64,
        "every warm request must hit ({} hits)",
        cache.hits()
    );

    for (id, (case, reply)) in cases.iter().zip(&cold_replies).enumerate() {
        let frame = Json::parse(reply).expect("reply parses");
        assert_eq!(
            frame.get("ok"),
            Some(&Json::Bool(true)),
            "case {id} ({case:?}): {reply}"
        );
        assert_eq!(
            frame.get("id").and_then(Json::as_num),
            Some(id as f64),
            "reply id echo"
        );
        let report_doc = frame.get("report").expect("report payload");

        // 1. Bit-identical to the in-process runner: same wire bytes,
        //    same decoded struct, same float bit patterns.
        let runner = case.runner();
        let fresh = runner
            .analyze(case.arch, case.workload())
            .expect("in-process analyze");
        let key = runner.cache_key(case.arch, case.workload());
        let expected_doc = fresh.to_cached().to_json(&key);
        assert_eq!(
            report_doc.render_line(),
            expected_doc.render_line(),
            "case {id} ({case:?}): wire form drifted"
        );
        let served =
            CachedReport::from_json(report_doc, Some(&key)).expect("served report decodes");
        let expected = fresh.to_cached();
        assert_eq!(served, expected, "case {id}");
        assert_eq!(served.latency_s.to_bits(), expected.latency_s.to_bits());
        assert_eq!(served.edp_pj_s.to_bits(), expected.edp_pj_s.to_bits());
        for (got, want) in [
            (served.energy.tc_pj, expected.energy.tc_pj),
            (served.energy.rf_pj, expected.energy.rf_pj),
            (served.energy.l1_pj, expected.energy.l1_pj),
            (served.energy.dram_pj, expected.energy.dram_pj),
            (served.energy.buffer_pj, expected.energy.buffer_pj),
            (served.energy.general_pj, expected.energy.general_pj),
        ] {
            assert_eq!(got.to_bits(), want.to_bits(), "case {id}: energy bits");
        }

        // 2. The one-shot CLI path agrees with the same in-process
        //    report (the serve ≡ runner ≡ CLI triangle).
        let argv: Vec<String> = [
            "analyze",
            "--shape",
            &case.shape_token(),
            "--arch",
            case.arch_token,
            "--precision",
            case.precision_token,
            "--group",
            &case.group_token,
            "--dup",
            &case.dup.to_string(),
            "--width",
            &case.width.to_string(),
            "--json",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let cli_out = cli::run(&argv).expect("one-shot CLI analyze");
        assert_eq!(
            cli_out,
            cli::report_json(&fresh),
            "case {id} ({case:?}): CLI path drifted from the in-process report"
        );
    }

    // Batch conformance: the same points sent as one frame must yield
    // the same per-point wire bytes as the one-at-a-time replies.
    let sample: Vec<usize> = (0..cases.len()).step_by(29).collect();
    let entries: Vec<String> = sample
        .iter()
        .map(|&i| {
            let c = &cases[i];
            format!(
                concat!(
                    "{{\"shape\":\"{}\",\"arch\":\"{}\",\"precision\":\"{}\",",
                    "\"group\":\"{}\",\"dup\":{},\"width\":{}}}"
                ),
                c.shape_token(),
                c.arch_token,
                c.precision_token,
                c.group_token,
                c.dup,
                c.width,
            )
        })
        .collect();
    let batch = format!(
        "{{\"op\":\"batch\",\"id\":9999,\"requests\":[{}]}}",
        entries.join(",")
    );
    let reply = Json::parse(&client.roundtrip(&batch)).expect("batch reply parses");
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply:?}");
    let reports = reply
        .get("reports")
        .and_then(Json::as_arr)
        .expect("reports array");
    assert_eq!(reports.len(), sample.len());
    for (slot, &i) in sample.iter().enumerate() {
        let single = Json::parse(&cold_replies[i]).expect("cold reply parses");
        assert_eq!(
            reports[slot].render_line(),
            single.get("report").expect("report").render_line(),
            "batch slot {slot} (case {i}) drifted from the single-shot reply"
        );
    }

    // Drain and confirm the counters saw the whole sweep.
    let shutdown = client.roundtrip("{\"op\":\"shutdown\",\"id\":10000}");
    assert!(shutdown.contains("\"draining\":true"), "{shutdown}");
    drop(client);
    let summary = server.wait().expect("clean drain");
    assert_eq!(summary.errors, 0, "no error frames in a clean sweep");
    assert_eq!(summary.served as usize, 2 * REQUESTS + 2);

    std::fs::remove_dir_all(&dir).ok();
}

/// Backend conformance: a server running the batched SoA backend must
/// answer every request with replies *byte-identical* to the scalar
/// reference server — the serve-layer face of the workspace-wide
/// scalar ≡ batched bit-exactness contract.
#[test]
fn batched_backend_serves_bit_identical_replies() {
    let bind = |backend| {
        Server::bind(
            "127.0.0.1:0",
            ServeOptions {
                queue_capacity: 16,
                workers: 2,
                backend,
                ..ServeOptions::default()
            },
            None,
        )
        .expect("bind server")
    };
    let scalar = bind(pacq::Backend::Scalar);
    let batched = bind(pacq::Backend::Batched);

    let mut rng = TestRng::for_property("serve_conformance::backends");
    let cases: Vec<Case> = (0..40).map(|_| random_case(&mut rng)).collect();

    let mut scalar_client = Client::connect(&scalar);
    let mut batched_client = Client::connect(&batched);
    for (id, case) in cases.iter().enumerate() {
        let a = scalar_client.roundtrip(&case.frame(id));
        let b = batched_client.roundtrip(&case.frame(id));
        assert_eq!(
            a, b,
            "case {id} ({case:?}): batched reply drifted from scalar"
        );
        let frame = Json::parse(&a).expect("reply parses");
        assert_eq!(frame.get("ok"), Some(&Json::Bool(true)), "case {id}: {a}");
    }

    // The stats endpoint names the backend each server runs.
    let stats = |client: &mut Client| {
        let reply =
            Json::parse(&client.roundtrip("{\"op\":\"stats\",\"id\":777}")).expect("stats parses");
        reply
            .get("stats")
            .and_then(|s| s.get("backend"))
            .and_then(Json::as_str)
            .map(str::to_string)
    };
    assert_eq!(stats(&mut scalar_client).as_deref(), Some("scalar"));
    assert_eq!(stats(&mut batched_client).as_deref(), Some("batched"));

    for (client, server) in [(scalar_client, scalar), (batched_client, batched)] {
        let mut client = client;
        client.roundtrip("{\"op\":\"shutdown\",\"id\":778}");
        drop(client);
        let summary = server.wait().expect("clean drain");
        assert_eq!(summary.errors, 0);
    }
}

/// The `--stdio` lifecycle speaks the same protocol: drive the
/// installed binary (when present) end-to-end through a pipe. Falls
/// back to the in-process TCP server when the binary is missing (e.g.
/// `cargo test -p pacq --lib` builds no binaries first).
#[test]
fn stdio_mode_serves_the_same_reports() {
    use std::process::{Command, Stdio};

    let exe = env!("CARGO_BIN_EXE_pacq");
    let mut child = Command::new(exe)
        .args(["serve", "--stdio"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn pacq serve --stdio");
    let mut stdin = child.stdin.take().expect("child stdin");
    let stdout = BufReader::new(child.stdout.take().expect("child stdout"));

    let case = Case {
        shape: GemmShape::new(16, 256, 256),
        arch: Architecture::Pacq,
        arch_token: "pacq",
        precision: WeightPrecision::Int2,
        precision_token: "int2",
        group: GroupShape::G128,
        group_token: "g128".to_string(),
        dup: 2,
        width: 4,
    };
    stdin
        .write_all((case.frame(1) + "\n{\"op\":\"shutdown\",\"id\":2}\n").as_bytes())
        .expect("write frames");
    drop(stdin);

    let lines: Vec<String> = stdout.lines().map(|l| l.expect("read line")).collect();
    let status = child.wait().expect("child exits");
    assert!(status.success(), "serve --stdio exits 0: {status:?}");

    // ready first and drained last; the analyze reply and the shutdown
    // ack are matched by id (replies are unordered across requests).
    assert!(lines.len() >= 4, "{lines:?}");
    let ready = Json::parse(&lines[0]).expect("ready parses");
    assert_eq!(ready.get("event").and_then(Json::as_str), Some("ready"));
    let frames: Vec<Json> = lines
        .iter()
        .map(|l| Json::parse(l).expect("every line parses"))
        .collect();
    let by_id = |id: f64| {
        frames
            .iter()
            .find(|f| f.get("id").and_then(Json::as_num) == Some(id))
            .unwrap_or_else(|| panic!("no reply with id {id}: {lines:?}"))
    };
    let reply = by_id(1.0);
    assert_eq!(by_id(2.0).get("draining"), Some(&Json::Bool(true)));
    let runner = case.runner();
    let fresh = runner
        .analyze(case.arch, case.workload())
        .expect("in-process analyze");
    let key = runner.cache_key(case.arch, case.workload());
    assert_eq!(
        reply.get("report").expect("report").render_line(),
        fresh.to_cached().to_json(&key).render_line(),
        "stdio-served report drifted"
    );
    let last = Json::parse(lines.last().expect("last line")).expect("drained parses");
    assert_eq!(last.get("event").and_then(Json::as_str), Some("drained"));
}
