//! Fault-injection harness: the dynamic half of the no-panic contract
//! (DESIGN.md §10).
//!
//! The library promises that no hostile input — corrupt artifact bytes,
//! degenerate quantizer matrices, malformed CLI argument vectors — ever
//! panics a public API: everything surfaces as a typed [`PacqError`].
//! The clippy lint gate (`unwrap_used`/`expect_used`/`panic` denied in
//! non-test code) enforces this statically; this suite enforces it
//! dynamically by firing randomized corruption at the decoding, the
//! quantizers and the CLI and asserting `Err`, never an unwind.

use pacq::cli;
use pacq::{PacqError, PacqResult};
use pacq_fp16::WeightPrecision;
use pacq_quant::{
    awq::AwqScaler, from_bytes, gptq::GptqQuantizer, to_bytes, GroupShape, MatrixF32, PackDim,
    PackedMatrix, RtnQuantizer,
};
use proptest::prelude::*;

/// A small deterministic packed artifact to corrupt.
fn sample_artifact(seed: u64) -> Vec<u8> {
    let w = MatrixF32::from_fn(32, 16, |k, n| {
        let x = (seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add((k * 16 + n) as u64)
            >> 33) as u32;
        (x % 1024) as f32 / 512.0 - 1.0
    });
    let q = RtnQuantizer::new(WeightPrecision::Int4, GroupShape::along_k(32))
        .quantize(&w)
        .expect("finite sample weights quantize");
    let p = PackedMatrix::pack(&q, PackDim::N).expect("aligned sample packs");
    to_bytes(&p)
}

/// Asserts that a fallible call neither panics nor unwinds; the `Err`
/// payload must render a one-line diagnostic.
fn assert_no_panic<T>(what: &str, f: impl FnOnce() -> PacqResult<T> + std::panic::UnwindSafe) {
    match std::panic::catch_unwind(f) {
        Ok(Ok(_)) => {}
        Ok(Err(e)) => {
            let msg = e.to_string();
            assert!(!msg.is_empty(), "{what}: empty diagnostic");
            assert!(!msg.contains('\n'), "{what}: multi-line diagnostic: {msg}");
        }
        Err(_) => panic!("{what}: panicked instead of returning Err"),
    }
}

proptest! {
    /// Round-trip: encode → decode is the identity on valid artifacts.
    #[test]
    fn artifact_roundtrip_is_identity(
        seed in any::<u64>(),
        k_words in 1usize..6,
        n_words in 1usize..5,
        dim in prop::sample::select(vec![PackDim::K, PackDim::N]),
        precision in prop::sample::select(vec![WeightPrecision::Int4, WeightPrecision::Int2]),
    ) {
        let (k, n) = (k_words * 8, n_words * 8);
        let w = MatrixF32::from_fn(k, n, |r, c| {
            let x = (seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add((r * n + c) as u64)
                >> 33) as u32;
            (x % 2048) as f32 / 1024.0 - 1.0
        });
        let q = RtnQuantizer::new(precision, GroupShape::along_k(k)).quantize(&w).unwrap();
        let p = PackedMatrix::pack(&q, dim).unwrap();
        let decoded = from_bytes(&to_bytes(&p)).unwrap();
        prop_assert_eq!(decoded, p);
    }

    /// Every truncation of a valid artifact is an `Err`, never a panic.
    #[test]
    fn truncated_artifacts_never_panic(seed in any::<u64>(), cut in 0usize..900) {
        let bytes = sample_artifact(seed);
        let cut = cut.min(bytes.len().saturating_sub(1));
        assert_no_panic("from_bytes(truncated)", || from_bytes(&bytes[..cut]).map(|_| ()));
        // A strict prefix can never decode successfully: the header
        // announces more payload than remains.
        prop_assert!(from_bytes(&bytes[..cut]).is_err());
    }

    /// Single-bit flips anywhere in the artifact either decode to some
    /// matrix or fail with a typed error — no panic, no abort.
    #[test]
    fn bit_flipped_artifacts_never_panic(
        seed in any::<u64>(),
        byte in 0usize..900,
        bit in 0u8..8,
    ) {
        let mut bytes = sample_artifact(seed);
        let byte = byte % bytes.len();
        bytes[byte] ^= 1 << bit;
        assert_no_panic("from_bytes(bit flip)", || from_bytes(&bytes).map(|_| ()));
    }

    /// Fully random byte soup fed to the decoder never panics.
    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        assert_no_panic("from_bytes(random)", || from_bytes(&bytes).map(|_| ()));
    }

    /// Degenerate matrices (zero-ish extents, NaN/Inf poisoning) give the
    /// RTN quantizer typed errors, never panics.
    #[test]
    fn degenerate_rtn_inputs_never_panic(
        rows in 0usize..40,
        cols in 0usize..20,
        poison in prop::sample::select(vec![f32::NAN, f32::INFINITY, f32::NEG_INFINITY]),
        poisoned in any::<bool>(),
    ) {
        let w = MatrixF32::from_fn(rows, cols, |r, c| {
            if poisoned && r == rows / 2 && c == cols / 2 {
                poison
            } else {
                (r as f32 - c as f32) / 8.0
            }
        });
        let quantizer = RtnQuantizer::new(WeightPrecision::Int4, GroupShape::along_k(32));
        assert_no_panic("rtn.quantize(degenerate)", || quantizer.quantize(&w).map(|_| ()));
        if rows == 0 || cols == 0 || poisoned {
            prop_assert!(quantizer.quantize(&w).is_err());
        }
    }

    /// Hostile CLI argument vectors return `Err` (or help/report text) —
    /// the binary never backtraces at a user.
    #[test]
    fn hostile_cli_argv_never_panics(
        tokens in prop::collection::vec(
            prop::sample::select(vec![
                "analyze", "compare", "sweep", "help", "frobnicate",
                "--shape", "m16n16k16", "m0n0k0", "m-1n16k16", "mXnYkZ", "m15n16k16",
                "--precision", "int4", "int2", "int5", "",
                "--arch", "pacq", "warp9",
                "--group", "g128", "g0", "h128",
                "--dup", "3", "--width", "0", "--param", "batch", "chaos",
                "--json", "--jobs", "1000000", "-1",
            ]),
            0..6,
        ),
    ) {
        // `--jobs <huge>` would genuinely build a million-thread pool;
        // keep the fuzz on the parser, not the OS.
        let argv: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
        if argv.iter().any(|t| t == "--jobs" || t == "1000000") {
            let has_valid_jobs = argv
                .windows(2)
                .any(|w| w[0] == "--jobs" && w[1].parse::<usize>().map(|n| n > 64) == Ok(true));
            prop_assume!(!has_valid_jobs);
        }
        assert_no_panic("cli::run(hostile argv)", || cli::run(&argv).map(|_| ()));
    }
}

#[test]
fn awq_empty_grid_is_err_not_panic() {
    assert_no_panic("AwqScaler::with_grid([])", || {
        AwqScaler::with_grid(vec![]).map(|_| ())
    });
    assert!(matches!(
        AwqScaler::with_grid(vec![]),
        Err(PacqError::EmptySearchSpace { .. })
    ));
    assert!(matches!(
        AwqScaler::with_grid(vec![0.5, f64::NAN]),
        Err(PacqError::NonFinite { .. })
    ));
}

#[test]
fn gptq_degenerate_configs_are_err_not_panic() {
    for damping in [0.0, -4.0, f64::NAN, f64::INFINITY] {
        assert_no_panic("GptqQuantizer::with_damping", || {
            GptqQuantizer::new(WeightPrecision::Int4, GroupShape::along_k(32))
                .and_then(|q| q.with_damping(damping))
                .map(|_| ())
        });
    }
    assert!(GptqQuantizer::new(WeightPrecision::Int4, GroupShape::G32X4).is_err());
}

/// A small valid VCD document to corrupt: the baseline multiplier with
/// every node watched, a few deterministic operations.
fn sample_vcd() -> String {
    use pacq_rtl::{Fp16MulCircuit, VcdRecorder};
    let mut c = Fp16MulCircuit::build();
    let mut vcd = VcdRecorder::new("dut");
    vcd.watch_all_nodes(&c.netlist);
    for i in 0u16..4 {
        c.multiply(0x3C00 + i, 0x4200 ^ (i << 8));
        vcd.sample(&c.netlist);
    }
    vcd.render()
}

proptest! {
    /// Truncated VCD documents (cut anywhere, including mid-header
    /// before `$enddefinitions`) are typed errors, never panics.
    #[test]
    fn truncated_vcd_never_panics(cut_permille in 0u32..1000) {
        let text = sample_vcd();
        let cut = (text.len() * cut_permille as usize) / 1000;
        // Cut on a char boundary (the dump is ASCII, but stay honest).
        let mut cut = cut.min(text.len());
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        let truncated = &text[..cut];
        assert_no_panic("parse_transition_counts(truncated)", || {
            pacq_rtl::parse_transition_counts(truncated).map(|_| ())
        });
        // A cut before the header terminator is always an error — a
        // parse cannot succeed without `$enddefinitions`.
        if !truncated.contains("$enddefinitions") {
            prop_assert!(pacq_rtl::parse_transition_counts(truncated).is_err());
        }
    }

    /// Byte-corrupted VCD documents (one byte overwritten with random
    /// garbage) are typed errors or clean parses, never panics.
    #[test]
    fn corrupt_vcd_never_panics(pos_permille in 0u32..1000, byte in any::<u8>()) {
        let mut bytes = sample_vcd().into_bytes();
        let pos = ((bytes.len() * pos_permille as usize) / 1000).min(bytes.len() - 1);
        bytes[pos] = byte;
        let text = String::from_utf8_lossy(&bytes).into_owned();
        assert_no_panic("parse_transition_counts(corrupt)", || {
            pacq_rtl::parse_transition_counts(&text).map(|_| ())
        });
    }
}

#[test]
fn degenerate_activity_streams_are_err_not_panic() {
    use pacq_fp16::WeightPrecision as P;
    use pacq_rtl::MulKind;
    // A zero-length (and single-op) stimulus stream cannot expose a
    // transition; both are typed errors for every netlist × precision.
    for kind in MulKind::ALL {
        for precision in [P::Int4, P::Int2] {
            for ops in [0u64, 1] {
                assert_no_panic("measure(degenerate stream)", || {
                    pacq_rtl::measure(kind, precision, ops, 7).map(|_| ())
                });
                assert!(matches!(
                    pacq_rtl::measure(kind, precision, ops, 7),
                    Err(PacqError::InvalidInput { .. })
                ));
            }
        }
    }
    assert_no_panic("parse_transition_counts(empty)", || {
        pacq_rtl::parse_transition_counts("").map(|_| ())
    });
    assert!(pacq_rtl::parse_transition_counts("  \n ").is_err());
}

#[test]
fn gutted_activity_bom_is_err_not_panic() {
    use pacq_energy::ActivityBom;
    // Pricing a histogram whose gate class was removed from the BOM is
    // a typed error naming the class — for every class in the netlists.
    for class in ["not", "and", "or", "xor", "mux"] {
        let bom = ActivityBom::calibrated().without_class(class);
        assert_no_panic("ActivityBom::price_pj(gutted)", || {
            bom.price_pj(&[(class, 100)]).map(|_| ())
        });
        let e = bom.price_pj(&[(class, 100)]).unwrap_err();
        assert!(
            e.to_string().contains(class) && e.to_string().contains("missing"),
            "{e}"
        );
    }
    // Degenerate scale factors are rejected up front, not at pricing.
    for scale in [0.0, -1.0, f64::NAN, f64::INFINITY] {
        assert_no_panic("ActivityBom::with_scale(degenerate)", || {
            ActivityBom::calibrated().with_scale(scale).map(|_| ())
        });
        assert!(ActivityBom::calibrated().with_scale(scale).is_err());
    }
}

/// The serve surface under concurrent hostile fire (ISSUE 5): 32
/// client threads share one server, each interleaving valid requests
/// with malformed JSON, unknown ops, wrong-typed fields and an
/// oversized frame. The no-panic contract extends per connection:
/// every valid request gets exactly one ok reply, every malformed
/// frame gets exactly one typed error frame, and no client ever loses
/// a reply because of another client's garbage.
#[test]
fn serve_survives_32_hostile_clients() {
    use pacq::{ReportCache, ServeOptions, Server};
    use pacq_trace::Json;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;
    use std::sync::Arc;

    const CLIENTS: usize = 32;
    const VALID_PER_CLIENT: usize = 5; // analyze ×4 + ping
    const MALFORMED_PER_CLIENT: usize = 4;

    let dir = std::env::temp_dir().join(format!("pacq-serve-stress-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = Arc::new(ReportCache::open(&dir).expect("open cache"));
    let server = Server::bind(
        "127.0.0.1:0",
        ServeOptions {
            // Large enough that valid requests never bounce as
            // queue_full (overflow has its own dedicated test).
            queue_capacity: CLIENTS * VALID_PER_CLIENT,
            workers: 4,
            ..ServeOptions::default()
        },
        Some(Arc::clone(&cache)),
    )
    .expect("bind server");
    let addr = server.addr();

    let clients: Vec<std::thread::JoinHandle<()>> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let mut writer = stream;
                let oversized = "x".repeat(pacq::serve::MAX_FRAME_BYTES + 16);
                // Valid ids are globally unique: client*100 + slot.
                let frames = [
                    format!(
                        "{{\"op\":\"analyze\",\"id\":{},\"shape\":\"m16n{}k64\"}}",
                        c * 100,
                        64 + 16 * (c % 4)
                    ),
                    "{\"op\":\"frobnicate\"}".to_string(),
                    format!(
                        "{{\"op\":\"analyze\",\"id\":{},\"shape\":\"m16n64k64\",\"precision\":\"int2\"}}",
                        c * 100 + 1
                    ),
                    "this is not json".to_string(),
                    format!("{{\"op\":\"analyze\",\"id\":{},\"shape\":\"m32n64k64\"}}", c * 100 + 2),
                    "{\"op\":\"analyze\",\"shape\":42}".to_string(),
                    format!("{{\"op\":\"ping\",\"id\":{}}}", c * 100 + 3),
                    oversized,
                    format!(
                        "{{\"op\":\"analyze\",\"id\":{},\"shape\":\"m16n128k64\",\"dup\":4}}",
                        c * 100 + 4
                    ),
                ];
                for frame in &frames {
                    writer
                        .write_all(frame.as_bytes())
                        .and_then(|()| writer.write_all(b"\n"))
                        .expect("send");
                }
                // Exactly one reply per frame, matched by id (replies
                // are unordered across in-flight requests).
                let mut ok_ids = Vec::new();
                let mut error_classes = Vec::new();
                for _ in 0..frames.len() {
                    let mut line = String::new();
                    reader.read_line(&mut line).expect("read reply");
                    let doc = Json::parse(line.trim_end()).expect("reply parses");
                    match doc.get("ok") {
                        Some(&Json::Bool(true)) => {
                            ok_ids.push(doc.get("id").and_then(Json::as_num).expect("id"));
                        }
                        Some(&Json::Bool(false)) => {
                            let class = doc
                                .get("error")
                                .and_then(|e| e.get("class"))
                                .and_then(Json::as_str)
                                .expect("typed class")
                                .to_string();
                            let code = doc
                                .get("error")
                                .and_then(|e| e.get("exit_code"))
                                .and_then(Json::as_num)
                                .expect("exit code");
                            assert!(code >= 2.0, "error frames carry a real exit code");
                            error_classes.push(class);
                        }
                        other => panic!("frame without ok field: {other:?} in {line}"),
                    }
                }
                ok_ids.sort_by(|a, b| a.partial_cmp(b).expect("finite ids"));
                let expected: Vec<f64> =
                    (0..VALID_PER_CLIENT).map(|s| (c * 100 + s) as f64).collect();
                assert_eq!(ok_ids, expected, "client {c}: exactly one ok reply per valid id");
                assert_eq!(
                    error_classes.len(),
                    MALFORMED_PER_CLIENT,
                    "client {c}: exactly one typed error per bad frame"
                );
                for class in &error_classes {
                    assert!(
                        class == "protocol" || class == "usage",
                        "client {c}: unexpected class {class}"
                    );
                }
            })
        })
        .collect();
    for client in clients {
        client.join().expect("client thread clean");
    }

    // Drain; a panicked worker or reader would hang the drain or skew
    // the counters, so a clean summary is the no-panic proof.
    server.shutdown();
    let summary = server.wait().expect("server thread never panics");
    assert_eq!(
        summary.served,
        (CLIENTS * VALID_PER_CLIENT) as u64,
        "no lost replies"
    );
    assert_eq!(summary.errors, (CLIENTS * MALFORMED_PER_CLIENT) as u64);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_malformed_shape_has_usage_exit_code() {
    let argv = |s: &str| -> Vec<String> { s.split_whitespace().map(String::from).collect() };
    for cmd in [
        "analyze --shape m0n16k16",
        "analyze --shape m15n16k16",
        "analyze --shape garbage",
        "sweep --param chaos --shape m16n16k16",
    ] {
        let err = cli::run(&argv(cmd)).unwrap_err();
        assert!(err.is_usage(), "{cmd}: {err}");
        assert_eq!(err.exit_code(), 2, "{cmd}");
        assert_ne!(err.exit_code(), 0, "{cmd}");
    }
}
