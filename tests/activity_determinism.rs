//! Determinism of the activity calibration (ISSUE satellite): the same
//! seed and stimulus stream must produce byte-identical audit output
//! across `--jobs 1` vs `--jobs N` and across two separate processes,
//! and the metrics manifests must agree on every field that is not a
//! timing (wall-clock spans, creation timestamp, thread-pool sizing).
//!
//! The calibration is sequential by construction — the LCG stream and
//! the gate-level simulation have no data parallelism — so `--jobs`
//! must be observable only in the manifest's `invocation` block, never
//! in the numbers.

use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicU64, Ordering};

use pacq_trace::Json;

/// A unique scratch path per call, safe under concurrent test binaries.
fn tmp_path(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "pacq-activity-determinism-{}-{tag}-{n}.json",
        std::process::id()
    ))
}

/// One `pacq audit --activity` subprocess run: (stdout bytes, manifest).
fn run_audit(jobs: &str, tag: &str) -> (Vec<u8>, Json) {
    let path = tmp_path(tag);
    let exe = env!("CARGO_BIN_EXE_pacq");
    let out = Command::new(exe)
        .args([
            "audit",
            "--activity",
            "--jobs",
            jobs,
            "--metrics",
            path.to_str().expect("utf-8 temp path"),
        ])
        .output()
        .expect("spawn pacq audit --activity");
    assert!(
        out.status.success(),
        "audit --activity exits 0 (jobs {jobs}): {:?}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&path).expect("manifest written");
    let manifest = Json::parse(&text).expect("manifest parses");
    let _ = std::fs::remove_file(&path);
    (out.stdout, manifest)
}

/// The manifest subtree that must be identical across runs: everything
/// except wall-clock (`spans`, `created_unix_s`) and pool sizing
/// (`invocation.jobs` / `invocation.effective_jobs`).
fn stable_fields(manifest: &Json) -> String {
    let field = |key: &str| {
        manifest
            .get(key)
            .unwrap_or_else(|| panic!("manifest has `{key}`"))
            .render_line()
    };
    let invocation = manifest.get("invocation").expect("invocation block");
    let args = invocation
        .get("args")
        .expect("invocation.args")
        .render_line();
    let binary = invocation
        .get("binary")
        .expect("invocation.binary")
        .render_line();
    format!(
        "schema={} binary={binary} args={args} results={} counters={}",
        field("schema"),
        field("results"),
        field("counters"),
    )
}

#[test]
fn activity_audit_is_byte_identical_across_jobs_and_processes() {
    // Two separate processes at --jobs 1, a third at --jobs 4: the
    // calibration stream is seeded, so every run must agree bytewise.
    let (stdout_a, manifest_a) = run_audit("1", "j1a");
    let (stdout_b, manifest_b) = run_audit("1", "j1b");
    let (stdout_c, manifest_c) = run_audit("4", "j4");

    assert_eq!(
        stdout_a, stdout_b,
        "two processes with identical flags diverged on stdout"
    );
    assert_eq!(
        stdout_a, stdout_c,
        "--jobs 1 vs --jobs 4 diverged on stdout"
    );

    // Manifests compared modulo timings: results and counters must be
    // identical; spans/created_unix_s/jobs are allowed to differ.
    let a = stable_fields(&manifest_a);
    assert_eq!(
        a,
        stable_fields(&manifest_b),
        "cross-process manifest drift"
    );
    assert_eq!(a, stable_fields(&manifest_c), "cross-jobs manifest drift");

    // The pool sizing IS recorded — determinism must not come from the
    // flag being ignored.
    let jobs_of = |m: &Json| {
        m.get("invocation")
            .and_then(|i| i.get("jobs"))
            .and_then(Json::as_num)
    };
    assert_eq!(jobs_of(&manifest_a), Some(1.0));
    assert_eq!(jobs_of(&manifest_c), Some(4.0));
}

#[test]
fn activity_manifest_records_all_four_points_with_histograms() {
    let (_, manifest) = run_audit("1", "fields");
    let results = manifest
        .get("results")
        .and_then(Json::as_arr)
        .expect("results array");
    let audit_points: Vec<&Json> = results
        .iter()
        .filter(|r| r.get("kind").and_then(Json::as_str) == Some("audit.activity"))
        .collect();
    assert_eq!(audit_points.len(), 4, "{}", manifest.render_line());
    for point in audit_points {
        for key in [
            "unit",
            "precision",
            "analytic_pj_per_op",
            "activity_pj_per_op",
            "activity_pj_per_cycle",
            "rel_error",
            "tolerance",
            "ops",
            "seed",
            "lanes",
            "total_toggles",
            "logic_toggles",
            "toggles_by_class",
        ] {
            assert!(
                point.get(key).is_some(),
                "audit point missing `{key}`: {}",
                point.render_line()
            );
        }
        // The toggle histogram covers every priced gate class.
        let hist = point
            .get("toggles_by_class")
            .expect("histogram")
            .render_line();
        for class in ["not", "and", "or", "xor", "mux"] {
            assert!(hist.contains(class), "histogram missing `{class}`: {hist}");
        }
    }
    let checks = manifest
        .get("counters")
        .and_then(|c| c.get("audit.activity.checks"))
        .and_then(Json::as_num);
    assert_eq!(checks, Some(4.0));
}
