//! Cross-crate property-based tests: invariants that must hold across
//! the quantization / packing / simulation / execution boundary.

use pacq::{Architecture, GemmRunner, GemmShape, GroupShape, NumericsMode, Workload};
use pacq_fp16::WeightPrecision;
use pacq_quant::{MatrixF32, PackDim, PackedMatrix, RtnQuantizer};
use proptest::prelude::*;

fn small_weights() -> impl Strategy<Value = MatrixF32> {
    // 32×16 matrices with bounded values; shapes divide every lane count.
    prop::collection::vec(-1.0f32..1.0, 32 * 16).prop_map(|v| MatrixF32::from_vec(32, 16, v))
}

fn any_precision() -> impl Strategy<Value = WeightPrecision> {
    prop_oneof![Just(WeightPrecision::Int4), Just(WeightPrecision::Int2)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quantize → pack → unpack → dequantize is the identity on the
    /// quantized values, along both packing directions.
    #[test]
    fn pack_roundtrip_preserves_quantized_values(
        w in small_weights(),
        precision in any_precision(),
    ) {
        let q = RtnQuantizer::new(precision, GroupShape::along_k(16)).quantize(&w).unwrap();
        for dim in [PackDim::K, PackDim::N] {
            let p = PackedMatrix::pack(&q, dim).expect("aligned");
            let unpacked = p.unpack();
            prop_assert_eq!(unpacked.codes(), q.codes());
            prop_assert_eq!(unpacked.dequantize(), q.dequantize());
        }
    }

    /// RTN error is bounded by half a scale step everywhere.
    #[test]
    fn rtn_error_bound(w in small_weights(), precision in any_precision()) {
        let q = RtnQuantizer::new(precision, GroupShape::along_k(16)).quantize(&w).unwrap();
        let deq = q.dequantize();
        for k in 0..w.rows() {
            for n in 0..w.cols() {
                let err = (w.get(k, n) - deq.get(k, n)).abs();
                prop_assert!(err <= 0.5 * q.scale(k, n) + 1e-6);
            }
        }
    }

    /// All three functional flows agree with the dequantized oracle.
    #[test]
    fn flows_agree_with_oracle(
        w in small_weights(),
        a_vals in prop::collection::vec(-2.0f32..2.0, 4 * 32),
    ) {
        let a = MatrixF32::from_vec(4, 32, a_vals).to_f16();
        let runner = GemmRunner::new()
            .with_group(GroupShape::along_k(16))
            .with_numerics(NumericsMode::Wide);
        let q = RtnQuantizer::new(WeightPrecision::Int4, GroupShape::along_k(16)).quantize(&w).unwrap();
        let p_k = PackedMatrix::pack(&q, PackDim::K).expect("aligned");
        let p_n = PackedMatrix::pack(&q, PackDim::N).expect("aligned");
        let oracle = pacq_simt::reference(&a, &p_n);
        let denom = oracle.frobenius_norm().max(1.0);

        for (arch, p) in [
            (Architecture::StandardDequant, &p_k),
            (Architecture::PackedK, &p_k),
            (Architecture::Pacq, &p_n),
        ] {
            let got = runner.execute(arch, &a, p).unwrap();
            let d = MatrixF32::from_fn(got.rows(), got.cols(), |r, c| {
                got.get(r, c) - oracle.get(r, c)
            });
            prop_assert!(
                d.frobenius_norm() / denom < 1e-2,
                "{arch}: rel err {}", d.frobenius_norm() / denom
            );
        }
    }

    /// Simulator counts scale linearly in n (same per-tile structure).
    #[test]
    fn stats_scale_linearly_in_n(scale in 1usize..6, precision in any_precision()) {
        let runner = GemmRunner::new();
        let base = runner
            .analyze(
                Architecture::Pacq,
                Workload::new(GemmShape::new(16, 64, 128), precision),
            )
            .unwrap();
        let big = runner
            .analyze(
                Architecture::Pacq,
                Workload::new(GemmShape::new(16, 64 * scale, 128), precision),
            )
            .unwrap();
        let s = scale as u64;
        prop_assert_eq!(big.stats.rf.a_reads, base.stats.rf.a_reads * s);
        prop_assert_eq!(big.stats.rf.b_reads, base.stats.rf.b_reads * s);
        prop_assert_eq!(big.stats.fetch_instructions, base.stats.fetch_instructions * s);
    }

    /// PacQ never loses to PackedK in cycles, RF accesses, or EDP, at any
    /// aligned shape.
    #[test]
    fn pacq_dominates_packed_k(
        mi in 1usize..4,
        ni in 1usize..8,
        ki in 1usize..8,
        precision in any_precision(),
    ) {
        let shape = GemmShape::new(mi * 16, ni * 16, ki * 16);
        let runner = GemmRunner::new().with_group(GroupShape::along_k(16 * ki));
        let wl = Workload::new(shape, precision);
        let base = runner.analyze(Architecture::PackedK, wl).unwrap();
        let pacq = runner.analyze(Architecture::Pacq, wl).unwrap();
        prop_assert!(pacq.stats.total_cycles <= base.stats.total_cycles);
        prop_assert!(pacq.stats.rf.total_accesses() < base.stats.rf.total_accesses());
        prop_assert!(pacq.edp_pj_s < base.edp_pj_s);
    }

    /// Energy is monotone: strictly more traffic or cycles never costs
    /// less energy (checked along the k axis).
    #[test]
    fn energy_monotone_in_k(ki in 1usize..8, precision in any_precision()) {
        let runner = GemmRunner::new();
        let small = runner
            .analyze(
                Architecture::Pacq,
                Workload::new(GemmShape::new(16, 64, 16 * ki), precision),
            )
            .unwrap();
        let big = runner
            .analyze(
                Architecture::Pacq,
                Workload::new(GemmShape::new(16, 64, 16 * (ki + 1)), precision),
            )
            .unwrap();
        prop_assert!(big.total_energy_pj() > small.total_energy_pj());
        prop_assert!(big.stats.total_cycles >= small.stats.total_cycles);
    }
}
