//! Capstone cross-stack test: a small GEMM computed entirely through the
//! **gate-level** parallel multiplier — quantize → pack → serialize →
//! deserialize → drive the netlist word by word → recover via Eq. (1) —
//! and compared against the dequantized oracle.

use pacq::{Architecture, GemmRunner, GroupShape, NumericsMode};
use pacq_fp16::{Fp16, WeightPrecision};
use pacq_quant::synth::SynthGenerator;
use pacq_rtl::ParallelFpIntCircuit;

#[test]
fn gate_level_gemm_matches_oracle() {
    let (m, n, k) = (2usize, 8usize, 32usize);
    let mut gen = SynthGenerator::new(2025);
    let a = gen.llm_activations(m, k).to_f16();
    let w = gen.llm_weights(k, n);

    let runner = GemmRunner::new()
        .with_group(GroupShape::along_k(k))
        .with_numerics(NumericsMode::Wide);
    let packed = runner
        .quantize_and_pack(&w, WeightPrecision::Int4, Architecture::Pacq)
        .expect("packs along n");

    // Ship the artifact through the binary container first.
    let bytes = pacq_quant::to_bytes(&packed);
    let packed = pacq_quant::from_bytes(&bytes).expect("round-trips");

    let oracle = pacq_simt::reference(&a, &packed);

    // Drive the gate-level circuit: for every (row, word-column), stream
    // the k products, recover Σ A·B = Σ A·(B+1032) − 1032·Σ A per lane.
    let mut circuit = ParallelFpIntCircuit::build();
    let lanes = 4usize;
    for i in 0..m {
        for wc in 0..packed.word_cols() {
            let mut lane_sums = [0f64; 4];
            let mut sum_a = 0f64;
            for kk in 0..k {
                let act = a.get(i, kk);
                sum_a += act.to_f32() as f64;
                let word = packed.word(kk, wc);
                let products = circuit.multiply(act.to_bits(), word.to_bits());
                for (lane, &p) in products.iter().enumerate() {
                    lane_sums[lane] += Fp16::from_bits(p).to_f32() as f64;
                }
            }
            for (lane, &biased_sum) in lane_sums.iter().enumerate() {
                let nn = wc * lanes + lane;
                let scale = packed.scale(0, nn) as f64;
                let recovered = (biased_sum - 1032.0 * sum_a) * scale;
                let want = oracle.get(i, nn) as f64;
                // The gate-level path rounds each biased product to FP16
                // (the PaperRounded numerics), so allow the corresponding
                // error budget: ~0.5·|A| absolute per term, scaled.
                let budget = (0..k)
                    .map(|kk| 0.5 * a.get(i, kk).to_f32().abs() as f64)
                    .sum::<f64>()
                    * scale
                    + 1e-6;
                assert!(
                    (recovered - want).abs() <= budget,
                    "C[{i},{nn}]: gate-level {recovered} vs oracle {want} (budget {budget})"
                );
            }
        }
    }
}

/// The same stream, but checking the gate-level circuit against the
/// behavioral parallel multiplier product by product (bit-exact under
/// flush-to-zero; the synthetic activations here are all normal).
#[test]
fn gate_level_products_match_behavioral_over_gemm_stream() {
    use pacq_fp16::{ParallelFpIntMultiplier, SubnormalMode};

    let (m, k) = (2usize, 16usize);
    let mut gen = SynthGenerator::new(77);
    let a = gen.llm_activations(m, k).to_f16();
    let w = gen.llm_weights(k, 8);
    let runner = GemmRunner::new().with_group(GroupShape::along_k(k));
    let packed = runner
        .quantize_and_pack(&w, WeightPrecision::Int4, Architecture::Pacq)
        .expect("packs");

    let mut circuit = ParallelFpIntCircuit::build();
    let unit = ParallelFpIntMultiplier::with_subnormal_mode(
        WeightPrecision::Int4,
        SubnormalMode::FlushToZero,
    );
    for i in 0..m {
        for wc in 0..packed.word_cols() {
            for kk in 0..k {
                let act = a.get(i, kk);
                let word = packed.word(kk, wc);
                let rtl = circuit.multiply(act.to_bits(), word.to_bits());
                let behav = unit.multiply(act, word);
                for (lane, lt) in behav.lane_traces().iter().enumerate() {
                    assert_eq!(
                        rtl[lane],
                        lt.product.to_bits(),
                        "A={:04x} word={:04x} lane {lane}",
                        act.to_bits(),
                        word.to_bits()
                    );
                }
            }
        }
    }
}
