//! Integration tests for the production-scale serving tier (ISSUE 7):
//! the connection-registry leak regression, per-client admission
//! control over real sockets, the `--max-clients` accept gate, the
//! LRU hot tier under live traffic, and a small end-to-end
//! `pacq loadgen` run through the CLI front end (global `--cache`,
//! `--hot` and `--metrics` included).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use pacq::{ReportCache, ServeOptions, Server};
use pacq_trace::Json;

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("pacq-serve-load-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// Polls `cond` for up to two seconds; connection teardown runs on its
/// own thread after the socket drops, so the registry empties *soon*,
/// not synchronously.
fn eventually(cond: impl Fn() -> bool) -> bool {
    for _ in 0..200 {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

/// A minimal NDJSON client (same shape as the conformance suite's).
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.addr()).expect("connect to serve");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client {
            reader,
            writer: stream,
        }
    }

    fn send(&mut self, frame: &str) {
        self.writer
            .write_all(frame.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .expect("send frame");
    }

    fn recv(&mut self) -> Json {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read reply");
        assert!(line.ends_with('\n'), "reply must be a full line: {line:?}");
        Json::parse(line.trim_end()).expect("reply parses")
    }

    fn roundtrip(&mut self, frame: &str) -> Json {
        self.send(frame);
        self.recv()
    }
}

/// PR 7 leak regression: the drain registry must return to empty after
/// every disconnect, sequential or overlapping — before the fix it
/// grew one stale socket clone per connection for the life of the
/// server.
#[test]
fn connection_registry_returns_to_zero_after_disconnects() {
    let server = Server::bind("127.0.0.1:0", ServeOptions::default(), None).expect("bind");

    for round in 0..8 {
        let mut client = Client::connect(&server);
        let pong = client.roundtrip(&format!("{{\"op\":\"ping\",\"id\":{round}}}"));
        assert_eq!(pong.get("pong"), Some(&Json::Bool(true)));
        assert_eq!(server.live_connections(), 1, "round {round}");
        drop(client);
        assert!(
            eventually(|| server.live_connections() == 0),
            "round {round}: registry kept {} stale connections",
            server.live_connections()
        );
    }

    // Overlapping connections unregister independently.
    let mut clients: Vec<Client> = (0..3).map(|_| Client::connect(&server)).collect();
    for (i, c) in clients.iter_mut().enumerate() {
        c.roundtrip(&format!("{{\"op\":\"ping\",\"id\":{i}}}"));
    }
    assert_eq!(server.live_connections(), 3);
    clients.clear();
    assert!(eventually(|| server.live_connections() == 0));

    server.shutdown();
    let summary = server.wait().expect("drain");
    assert_eq!(summary.errors, 0, "{summary:?}");
}

/// Admission control over a real socket: a client bursting past its
/// token bucket gets typed `rate_limited` frames (class 8) and still
/// gets exactly one reply per request — throttled, never dropped.
#[test]
fn rate_limited_clients_get_typed_frames_over_tcp() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServeOptions {
            workers: 2,
            rate: 1,
            burst: 2,
            ..ServeOptions::default()
        },
        None,
    )
    .expect("bind");

    const BURST: usize = 10;
    let mut client = Client::connect(&server);
    for id in 0..BURST {
        client.send(&format!(
            "{{\"op\":\"analyze\",\"id\":{id},\"shape\":\"m16n256k256\"}}"
        ));
    }
    let mut ok = 0usize;
    let mut limited = 0usize;
    for _ in 0..BURST {
        let reply = client.recv();
        if reply.get("ok") == Some(&Json::Bool(true)) {
            ok += 1;
        } else {
            let error = reply.get("error").expect("typed error frame");
            assert_eq!(
                error.get("class").and_then(Json::as_str),
                Some("rate_limited"),
                "{reply:?}"
            );
            assert_eq!(error.get("exit_code").and_then(Json::as_num), Some(8.0));
            limited += 1;
        }
    }
    assert_eq!(ok + limited, BURST, "zero-lost: every request answered");
    assert!(ok >= 2, "the opening burst allowance must be admitted");
    assert!(
        limited >= 5,
        "a 10-deep instant burst at rate 1/s must throttle"
    );

    // A fresh connection gets its own full bucket.
    let mut fresh = Client::connect(&server);
    let reply = fresh.roundtrip("{\"op\":\"analyze\",\"id\":99,\"shape\":\"m16n256k256\"}");
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply:?}");

    drop(client);
    drop(fresh);
    server.shutdown();
    let summary = server.wait().expect("drain");
    assert_eq!(summary.rate_limited, limited as u64, "{summary:?}");
}

/// The `--max-clients` accept gate: connection N+1 is answered with one
/// explanatory protocol frame and closed; the slot frees when a client
/// leaves.
#[test]
fn max_clients_gate_rejects_and_recovers() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServeOptions {
            max_clients: 1,
            ..ServeOptions::default()
        },
        None,
    )
    .expect("bind");

    let mut first = Client::connect(&server);
    // The roundtrip guarantees the acceptor has counted this client in.
    first.roundtrip("{\"op\":\"ping\",\"id\":1}");

    let mut second = Client::connect(&server);
    let rejection = second.recv();
    assert_eq!(
        rejection.get("ok"),
        Some(&Json::Bool(false)),
        "{rejection:?}"
    );
    let message = rejection
        .get("error")
        .and_then(|e| e.get("message"))
        .and_then(Json::as_str)
        .expect("rejection message");
    assert!(message.contains("--max-clients"), "{message}");
    // ... and then the socket closes (EOF, not a hang).
    let mut rest = String::new();
    assert_eq!(second.reader.read_line(&mut rest).expect("eof"), 0);

    // Freeing the only slot lets the next client in. The acceptor may
    // still be rejecting for a beat after `first` drops, so retries
    // tolerate (and count as "not yet") a rejected attempt.
    drop(first);
    assert!(eventually(|| {
        let Ok(stream) = TcpStream::connect(server.addr()) else {
            return false;
        };
        let Ok(read_half) = stream.try_clone() else {
            return false;
        };
        let mut reader = BufReader::new(read_half);
        let mut writer = stream;
        if writer.write_all(b"{\"op\":\"ping\",\"id\":2}\n").is_err() {
            return false;
        }
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(n) if n > 0 => Json::parse(line.trim_end())
                .ok()
                .is_some_and(|j| j.get("pong") == Some(&Json::Bool(true))),
            _ => false,
        }
    }));

    server.shutdown();
    let summary = server.wait().expect("drain");
    assert!(summary.rejected_conns >= 1, "{summary:?}");
}

/// The LRU hot tier under live traffic: a repeated working set smaller
/// than the tier is answered from memory on the second pass (disk hit
/// counters stay flat), byte-identically to the first pass.
#[test]
fn hot_tier_serves_repeats_from_memory_bit_identically() {
    let dir = scratch_dir("hot");
    let cache = Arc::new(
        ReportCache::open(&dir)
            .expect("open cache")
            .with_hot_tier(32),
    );
    let server = Server::bind(
        "127.0.0.1:0",
        ServeOptions {
            workers: 2,
            ..ServeOptions::default()
        },
        Some(Arc::clone(&cache)),
    )
    .expect("bind");

    const POINTS: usize = 8;
    let frame = |id: usize| {
        format!(
            "{{\"op\":\"analyze\",\"id\":{id},\"shape\":\"m{}n256k256\"}}",
            16 * ((id % POINTS) + 1)
        )
    };
    let mut client = Client::connect(&server);
    let cold: Vec<String> = (0..POINTS)
        .map(|id| client.roundtrip(&frame(id)).render_line())
        .collect();
    let disk_hits_after_cold = cache.hits();
    let warm: Vec<String> = (0..POINTS)
        .map(|id| client.roundtrip(&frame(id)).render_line())
        .collect();

    for (id, (c, w)) in cold.iter().zip(&warm).enumerate() {
        // Replies echo the same id both passes, so whole frames match.
        assert_eq!(c, w, "point {id}: warm reply drifted");
    }
    assert!(
        cache.hot_hits() >= POINTS as u64,
        "warm pass must be answered from the hot tier ({:?})",
        cache
    );
    assert_eq!(
        cache.hits(),
        disk_hits_after_cold,
        "the hot tier must intercept repeats before the disk store"
    );
    assert_eq!(cache.hot_evictions(), 0, "working set fits the tier");

    drop(client);
    server.shutdown();
    server.wait().expect("drain");
    let _ = std::fs::remove_dir_all(&dir);
}

/// End-to-end `pacq loadgen` through the CLI front end: global
/// `--cache`/`--hot`/`--metrics` compose with `--spawn`, nothing is
/// lost, sampled replies are byte-identical, and the manifest carries
/// the latency record.
#[test]
fn loadgen_cli_run_records_latency_provenance() {
    let dir = scratch_dir("loadgen");
    let manifest = dir.join("loadgen-manifest.json");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let cache_dir = dir.join("store");
    let args: Vec<String> = [
        "loadgen",
        "--spawn",
        "--requests",
        "300",
        "--clients",
        "3",
        "--window",
        "8",
        "--unique",
        "12",
        "--sample",
        "6",
        "--cache",
        cache_dir.to_str().expect("utf8 path"),
        "--hot",
        "32",
        "--metrics",
        manifest.to_str().expect("utf8 path"),
    ]
    .iter()
    .map(ToString::to_string)
    .collect();
    let out = pacq::cli::run(&args).expect("loadgen run");
    assert!(out.contains("300 ok, 0 errors, 0 lost"), "{out}");
    assert!(out.contains("6 sampled reports byte-identical"), "{out}");

    let text = std::fs::read_to_string(&manifest).expect("manifest written");
    for needle in [
        "loadgen.requests",
        "loadgen.lost",
        "loadgen.p95_us",
        "latency_histogram_log2",
        "throughput_rps",
        "sampled_identical",
    ] {
        assert!(text.contains(needle), "manifest lacks {needle}:\n{text}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
