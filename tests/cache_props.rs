//! Property tests for the content-addressed report cache and the
//! sharded sweep engine (DESIGN.md §12): a cache hit must be
//! bit-identical to a fresh computation, a damaged entry must be a miss
//! (never an error), and shard slices must partition the grid exactly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pacq::{
    run_sweep, Architecture, GemmRunner, GemmShape, ReportCache, Shard, SweepJob, SweepPlan,
    Workload,
};
use pacq_fp16::WeightPrecision;
use proptest::prelude::*;

/// A unique scratch directory per proptest case (cases run concurrently
/// across test binaries, so the process id alone is not enough).
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let mut p = std::env::temp_dir();
    p.push(format!(
        "pacq-cache-props-{}-{tag}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn any_precision() -> impl Strategy<Value = WeightPrecision> {
    prop_oneof![Just(WeightPrecision::Int4), Just(WeightPrecision::Int2)]
}

fn any_arch() -> impl Strategy<Value = Architecture> {
    prop_oneof![
        Just(Architecture::StandardDequant),
        Just(Architecture::PackedK),
        Just(Architecture::Pacq),
    ]
}

/// Ragged shapes included: the zero-padding path must cache exactly
/// like the aligned one.
fn any_shape() -> impl Strategy<Value = GemmShape> {
    (1usize..48, 1usize..96, 1usize..96).prop_map(|(m, n, k)| GemmShape::new(m, n, k))
}

/// The single cache entry file in `dir`.
fn entry_file(dir: &std::path::Path) -> std::path::PathBuf {
    std::fs::read_dir(dir)
        .expect("cache dir exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "json"))
        .expect("exactly one cache entry")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A cache hit returns the same report as a fresh computation, down
    /// to the bit patterns of the derived floats.
    #[test]
    fn cached_reports_are_bit_identical_to_fresh(
        shape in any_shape(),
        arch in any_arch(),
        precision in any_precision(),
    ) {
        let dir = scratch_dir("roundtrip");
        let wl = Workload::new(shape, precision);
        let fresh = GemmRunner::new().analyze(arch, wl).unwrap();

        let cache = Arc::new(ReportCache::open(&dir).unwrap());
        let runner = GemmRunner::new().with_cache(Arc::clone(&cache));
        let miss = runner.analyze(arch, wl).unwrap();
        let hit = runner.analyze(arch, wl).unwrap();

        prop_assert_eq!((cache.misses(), cache.hits()), (1, 1));
        prop_assert_eq!(&miss, &fresh);
        prop_assert_eq!(&hit, &fresh);
        prop_assert_eq!(hit.latency_s.to_bits(), fresh.latency_s.to_bits());
        prop_assert_eq!(hit.edp_pj_s.to_bits(), fresh.edp_pj_s.to_bits());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A truncated or garbage entry is a miss that recomputes and heals
    /// — never an error, never a wrong answer.
    #[test]
    fn damaged_entries_are_misses_that_recompute(
        cut in 0usize..2048,
        garbage in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let dir = scratch_dir("damage");
        let wl = Workload::new(GemmShape::new(16, 64, 64), WeightPrecision::Int4);
        let cache = Arc::new(ReportCache::open(&dir).unwrap());
        let runner = GemmRunner::new().with_cache(Arc::clone(&cache));
        let fresh = runner.analyze(Architecture::Pacq, wl).unwrap();

        let entry = entry_file(&dir);
        let intact = std::fs::read(&entry).unwrap();
        // Truncation at an arbitrary byte, then arbitrary garbage: both
        // classes of damage must degrade to a miss.
        for damage in [&intact[..cut.min(intact.len())], &garbage[..]] {
            std::fs::write(&entry, damage).unwrap();
            let recomputed = runner.analyze(Architecture::Pacq, wl).unwrap();
            prop_assert_eq!(&recomputed, &fresh);
        }
        // The recompute healed the store: the next lookup hits again.
        let before = cache.hits();
        let again = runner.analyze(Architecture::Pacq, wl).unwrap();
        prop_assert_eq!(&again, &fresh);
        prop_assert_eq!(cache.hits(), before + 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Hot tier ≡ disk ≡ fresh: with the LRU tier mounted, a hot hit, a
    /// disk hit behind a cold tier, and a fresh computation all return
    /// the same report down to the float bit patterns.
    #[test]
    fn hot_disk_and_fresh_reports_are_bit_identical(
        shape in any_shape(),
        arch in any_arch(),
        precision in any_precision(),
    ) {
        let dir = scratch_dir("hot-roundtrip");
        let wl = Workload::new(shape, precision);
        let fresh = GemmRunner::new().analyze(arch, wl).unwrap();

        // Store A computes on a miss, write-through fills its hot tier,
        // and the repeat is answered from memory.
        let store_a = Arc::new(ReportCache::open(&dir).unwrap().with_hot_tier(4));
        let runner_a = GemmRunner::new().with_cache(Arc::clone(&store_a));
        let miss = runner_a.analyze(arch, wl).unwrap();
        let hot_hit = runner_a.analyze(arch, wl).unwrap();
        prop_assert_eq!((store_a.misses(), store_a.hits()), (1, 0));
        prop_assert_eq!(store_a.hot_hits(), 1);

        // Store B shares the directory but starts with a cold tier: the
        // first lookup is a disk hit (promoted), the second a hot hit.
        let store_b = Arc::new(ReportCache::open(&dir).unwrap().with_hot_tier(4));
        let runner_b = GemmRunner::new().with_cache(Arc::clone(&store_b));
        let disk_hit = runner_b.analyze(arch, wl).unwrap();
        let promoted = runner_b.analyze(arch, wl).unwrap();
        prop_assert_eq!((store_b.misses(), store_b.hits()), (0, 1));
        prop_assert_eq!(store_b.hot_hits(), 1);

        for got in [&miss, &hot_hit, &disk_hit, &promoted] {
            prop_assert_eq!(got, &fresh);
            prop_assert_eq!(got.latency_s.to_bits(), fresh.latency_s.to_bits());
            prop_assert_eq!(got.edp_pj_s.to_bits(), fresh.edp_pj_s.to_bits());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Eviction respects capacity exactly: pushing `keys` distinct
    /// points through a tier of capacity `cap` evicts precisely
    /// `keys - cap` entries (never more, never earlier), the newest
    /// `cap` points stay memory-resident, and evicted points fall back
    /// to bit-identical disk hits.
    #[test]
    fn hot_eviction_is_exact_and_evictees_fall_back_to_disk(
        cap in 1usize..6,
        keys in 1usize..10,
    ) {
        let dir = scratch_dir("hot-evict");
        let cache = Arc::new(ReportCache::open(&dir).unwrap().with_hot_tier(cap));
        let runner = GemmRunner::new().with_cache(Arc::clone(&cache));
        let wl = |i: usize| Workload::new(
            GemmShape::new(16 * (i + 1), 64, 64),
            WeightPrecision::Int4,
        );
        for i in 0..keys {
            runner.analyze(Architecture::Pacq, wl(i)).unwrap();
        }
        prop_assert_eq!(
            cache.hot_evictions(),
            keys.saturating_sub(cap) as u64,
            "strictly capacity-driven eviction"
        );

        // The most recent `cap` points answer from memory...
        let hot_before = cache.hot_hits();
        for i in keys.saturating_sub(cap)..keys {
            runner.analyze(Architecture::Pacq, wl(i)).unwrap();
        }
        prop_assert_eq!(cache.hot_hits(), hot_before + keys.min(cap) as u64);
        // ...and the oldest evicted point (if any) is a disk hit, not a
        // recompute.
        if keys > cap {
            let (hits, misses) = (cache.hits(), cache.misses());
            runner.analyze(Architecture::Pacq, wl(0)).unwrap();
            prop_assert_eq!(cache.hits(), hits + 1);
            prop_assert_eq!(cache.misses(), misses);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A corrupt disk entry behind a hot miss degrades to a recompute
    /// that heals both tiers; a hot *hit* shields the damage entirely.
    #[test]
    fn corrupt_disk_behind_a_hot_miss_recomputes_and_heals(
        garbage in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let dir = scratch_dir("hot-damage");
        let wl = Workload::new(GemmShape::new(16, 64, 64), WeightPrecision::Int4);
        let store_a = Arc::new(ReportCache::open(&dir).unwrap().with_hot_tier(4));
        let runner_a = GemmRunner::new().with_cache(Arc::clone(&store_a));
        let fresh = runner_a.analyze(Architecture::Pacq, wl).unwrap();

        let entry = entry_file(&dir);
        std::fs::write(&entry, &garbage).unwrap();

        // Hot hit: the resident tier shields the damaged disk entry.
        let shielded = runner_a.analyze(Architecture::Pacq, wl).unwrap();
        prop_assert_eq!(&shielded, &fresh);
        prop_assert_eq!(store_a.misses(), 1, "no recompute behind a hot hit");

        // Cold tier: hot miss, damaged disk read degrades to a miss,
        // the recompute heals the file and the new tier.
        let store_b = Arc::new(ReportCache::open(&dir).unwrap().with_hot_tier(4));
        let runner_b = GemmRunner::new().with_cache(Arc::clone(&store_b));
        let healed = runner_b.analyze(Architecture::Pacq, wl).unwrap();
        prop_assert_eq!(&healed, &fresh);
        prop_assert_eq!((store_b.misses(), store_b.hot_hits()), (1, 0));

        // Both tiers healed: memory answers store B, disk answers a
        // third, tier-less store.
        let again = runner_b.analyze(Architecture::Pacq, wl).unwrap();
        prop_assert_eq!(&again, &fresh);
        prop_assert_eq!(store_b.hot_hits(), 1);
        let store_c = Arc::new(ReportCache::open(&dir).unwrap());
        let from_disk = GemmRunner::new()
            .with_cache(Arc::clone(&store_c))
            .analyze(Architecture::Pacq, wl)
            .unwrap();
        prop_assert_eq!(&from_disk, &fresh);
        prop_assert_eq!((store_c.hits(), store_c.misses()), (1, 0));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// `--shard i/N` slices are pairwise disjoint and their union is the
    /// full grid, for any job count and shard count.
    #[test]
    fn shard_slices_partition_any_grid(
        total in 0usize..500,
        count in 1usize..16,
    ) {
        let mut seen = vec![0u32; total];
        for index in 1..=count {
            let shard = Shard { index, count };
            for (job, hits) in seen.iter_mut().enumerate() {
                if shard.selects(job) {
                    *hits += 1;
                }
            }
        }
        prop_assert!(
            seen.iter().all(|&h| h == 1),
            "every job must belong to exactly one shard"
        );
    }
}

/// The partition property holds end-to-end through `run_sweep`: three
/// shards of the real batch grid execute disjoint job sets whose union
/// is the full plan.
#[test]
fn sweep_shards_reunite_to_the_full_grid() {
    let plan = SweepPlan::batch_grid(64, 64);
    let runner = GemmRunner::new();
    let mut union: Vec<String> = Vec::new();
    for index in 1..=3 {
        let out = run_sweep(&runner, &plan, Shard { index, count: 3 }, None).unwrap();
        assert_eq!(out.tally.selected, out.tally.executed);
        union.extend(out.rows.iter().map(|r| r.job.id()));
    }
    let mut expected: Vec<String> = plan.jobs().iter().map(SweepJob::id).collect();
    union.sort();
    expected.sort();
    assert_eq!(union, expected);
}
