//! The acceptance suite: every headline number the paper reports, with
//! the band our reproduction is expected to land in. `EXPERIMENTS.md`
//! records the measured values these tests pin.

use pacq::{Architecture, GemmRunner, GemmShape, GroupShape, SmConfig, Workload};
use pacq_energy::{calibration, Figure9, GemmUnit};
use pacq_fp16::{BaselineDpUnit, ParallelDpUnit, WeightPrecision};
use pacq_mixgemm::pacq_advantage_over_mixgemm;
use pacq_quant::lm::TinyLm;

/// §IV + Figure 8: the parallel multiplier computes 4 (8) products per
/// cycle at 3.38× (6.75×) better throughput/watt.
#[test]
fn fig8_multiplier_throughput_per_watt() {
    let g4 = calibration::mul_throughput_per_watt_gain(WeightPrecision::Int4);
    assert!((g4 - 3.38).abs() < 0.02, "INT4: {g4} (paper 3.38)");
    let g2 = calibration::mul_throughput_per_watt_gain(WeightPrecision::Int2);
    assert!((g2 - 6.75).abs() < 0.04, "INT2: {g2} (paper 6.75)");
}

/// Figure 8's cycle anchors for the DP-4 units on m2n4k4.
#[test]
fn fig8_dp4_cycle_anchors() {
    assert_eq!(BaselineDpUnit::new(4).unwrap().cycles_for_outputs(8), 11);
    assert_eq!(
        ParallelDpUnit::new(4, 2, WeightPrecision::Int4)
            .unwrap()
            .cycles_for_batches(8),
        19
    );
    assert_eq!(
        ParallelDpUnit::new(4, 2, WeightPrecision::Int2)
            .unwrap()
            .cycles_for_batches(8),
        35
    );
}

/// Figure 9: resource reuse ratios.
#[test]
fn fig9_reuse_ratios() {
    let f = Figure9::compute();
    assert!((f.parallel_int11.reused_fraction() - 0.75).abs() < 0.01);
    assert!((f.parallel_fp_int.reused_fraction() - 0.73).abs() < 0.01);
    let dp4 = f.parallel_dp4.reused_fraction();
    assert!(
        (0.54..0.63).contains(&dp4),
        "DP-4 reuse = {dp4} (paper ~0.60)"
    );
    assert!(
        (f.average_reuse() - 0.69).abs() < 0.02,
        "avg = {}",
        f.average_reuse()
    );
}

/// Figure 7(b): average speedup 1.99× over P(B_x)_k on m16n16k16.
#[test]
fn fig7b_speedup() {
    let runner = GemmRunner::new().with_group(GroupShape::along_k(16));
    let mut speedups = Vec::new();
    for precision in [WeightPrecision::Int4, WeightPrecision::Int2] {
        let wl = Workload::new(GemmShape::M16N16K16, precision);
        let base = runner.analyze(Architecture::PackedK, wl).unwrap();
        let pacq = runner.analyze(Architecture::Pacq, wl).unwrap();
        speedups.push(base.stats.total_cycles as f64 / pacq.stats.total_cycles as f64);
    }
    let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
    assert!(
        (1.85..2.05).contains(&avg),
        "average speedup = {avg} (paper 1.99)"
    );
}

/// Figure 7(a): PacQ cuts register-file accesses substantially.
///
/// Paper reports up to 54.3 %; our more idealized simulator credits PacQ
/// with larger savings (~70–80 %) — same direction and ordering, see
/// EXPERIMENTS.md for the discussion.
#[test]
fn fig7a_rf_access_reduction() {
    let runner = GemmRunner::new().with_group(GroupShape::along_k(16));
    let mut last = 0.0;
    for precision in [WeightPrecision::Int4, WeightPrecision::Int2] {
        let wl = Workload::new(GemmShape::M16N16K16, precision);
        let base = runner.analyze(Architecture::PackedK, wl).unwrap();
        let pacq = runner.analyze(Architecture::Pacq, wl).unwrap();
        let reduction =
            1.0 - pacq.stats.rf.total_accesses() as f64 / base.stats.rf.total_accesses() as f64;
        assert!(
            (0.50..0.90).contains(&reduction),
            "{precision}: reduction = {reduction}"
        );
        assert!(reduction > last, "reduction should grow with asymmetry");
        last = reduction;
    }
}

/// Figure 10: up to 81.4 % EDP reduction at m16n4096k4096.
#[test]
fn fig10_edp_reduction() {
    let runner = GemmRunner::new();
    let shape = GemmShape::new(16, 4096, 4096);
    let best = [WeightPrecision::Int4, WeightPrecision::Int2]
        .iter()
        .map(|&p| {
            let wl = Workload::new(shape, p);
            let std = runner.analyze(Architecture::StandardDequant, wl).unwrap();
            let pacq = runner.analyze(Architecture::Pacq, wl).unwrap();
            1.0 - pacq.edp_pj_s / std.edp_pj_s
        })
        .fold(0.0f64, f64::max);
    assert!(
        (0.75..0.88).contains(&best),
        "best EDP reduction = {best} (paper 0.814)"
    );
}

/// Figure 11: duplication 2 is the knee of the ablation.
#[test]
fn fig11_duplication_knee() {
    for precision in [WeightPrecision::Int4, WeightPrecision::Int2] {
        let tpw = |dup: usize| {
            let mut cfg = SmConfig::volta_like();
            cfg.adder_tree_duplication = dup;
            let runner = GemmRunner::new()
                .with_config(cfg)
                .with_group(GroupShape::along_k(16));
            let r = runner
                .analyze(
                    Architecture::Pacq,
                    Workload::new(GemmShape::M16N16K16, precision),
                )
                .unwrap();
            let power = GemmUnit::ParallelDp {
                width: 4,
                duplication: dup,
            }
            .power_units();
            1.0 / (r.stats.total_cycles as f64 * power)
        };
        let (t1, t2, t4) = (tpw(1), tpw(2), tpw(4));
        let step2 = t2 / t1;
        let step4 = t4 / t2;
        // Paper: 1.33 (1.38) then 1.11 (1.18).
        assert!(
            (1.20..1.45).contains(&step2),
            "{precision}: dup2 gain = {step2}"
        );
        assert!(
            (1.05..1.30).contains(&step4),
            "{precision}: dup4 gain = {step4}"
        );
        assert!(step2 > step4, "duplication 2 must be the knee");
    }
}

/// Figure 12(a): PacQ's advantage holds at every DP width.
#[test]
fn fig12a_dp_width_orthogonality() {
    for width in [4usize, 8, 16] {
        let mut cfg = SmConfig::volta_like();
        cfg.dp_width = width;
        let runner = GemmRunner::new()
            .with_config(cfg)
            .with_group(GroupShape::along_k(16));
        let wl = Workload::new(GemmShape::M16N16K16, WeightPrecision::Int4);
        let base = runner.analyze(Architecture::PackedK, wl).unwrap();
        let pacq = runner.analyze(Architecture::Pacq, wl).unwrap();
        let speedup = base.stats.total_cycles as f64 / pacq.stats.total_cycles as f64;
        assert!(speedup > 1.5, "DP-{width}: speedup = {speedup}");
    }
}

/// Figure 12(b): 4.12× (INT4) and 3.75× (INT2) over Mix-GEMM.
#[test]
fn fig12b_mixgemm_advantage() {
    let a4 = pacq_advantage_over_mixgemm(WeightPrecision::Int4);
    assert!((a4 - 4.12).abs() < 0.1, "INT4: {a4} (paper 4.12)");
    let a2 = pacq_advantage_over_mixgemm(WeightPrecision::Int2);
    assert!((a2 - 3.75).abs() < 0.1, "INT2: {a2} (paper 3.75)");
}

/// Table II: equal-volume [n,k] groups are iso-quality with k-only groups
/// (perplexity proxy; see DESIGN.md §4 for the substitution).
#[test]
fn table2_iso_perplexity() {
    // On a miniature model the per-draw quantization noise is comparable
    // to the degradation itself, so (like Table II's ±0.01 ppl deltas) the
    // claim is statistical: the SIGNED difference between a k-only group
    // and its equal-volume [n,k] twin centers on ~zero across model
    // draws, while quantization itself consistently degrades vs fp16.
    // The noise is heavy-tailed — the proxy's base perplexity sits near 1,
    // so one unluckily-grouped outlier weight can multiply a single draw's
    // ppl — which is why the center is estimated with the median, not the
    // mean. A systematic quality gap between the group shapes would still
    // shift every draw and move the median.
    let seeds = [1u64, 2, 3, 4, 5];
    for (g1, g2) in [
        (GroupShape::G128, GroupShape::G32X4),
        (GroupShape::G256, GroupShape::G64X4),
    ] {
        let mut diffs: Vec<f64> = Vec::with_capacity(seeds.len());
        for &seed in &seeds {
            let lm = TinyLm::new(seed, 64, 128, 256);
            let tokens = lm.sample(0, 500, 11);
            let base = lm.perplexity(&tokens);
            let p1 = lm
                .quantize_ffn(WeightPrecision::Int4, g1)
                .unwrap()
                .perplexity(&tokens);
            let p2 = lm
                .quantize_ffn(WeightPrecision::Int4, g2)
                .unwrap()
                .perplexity(&tokens);
            assert!(p1 >= base * 0.99, "{g1} seed {seed}: {p1} vs base {base}");
            assert!(p2 >= base * 0.99, "{g2} seed {seed}: {p2} vs base {base}");
            diffs.push((p1 - p2) / base);
        }
        diffs.sort_by(f64::total_cmp);
        let median_diff = diffs[diffs.len() / 2];
        assert!(
            median_diff.abs() < 0.06,
            "{g1} vs {g2}: median signed ppl diff {median_diff} — not iso-quality"
        );
    }
}
