//! Integration and property tests for the `pacq-arch/v1` declarative
//! architecture-template layer (DESIGN.md §18):
//!
//! - parse → render → parse is the identity, for TOML and JSON alike,
//!   over generated templates (proptest);
//! - every committed example under `examples/arch/` parses, validates,
//!   and reproduces the corresponding hardcoded builder bit for bit;
//! - the volta-like and PacQ templates reproduce the hardcoded
//!   configs' GemmReports bit-identically through `pacq exec --check`
//!   on both compute backends;
//! - editing a template's content (even one access energy) changes its
//!   digest and therefore every derived cache key — two machines that
//!   price differently can never share a cache entry.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pacq::{
    ArchTemplate, Architecture, Dataflow, GemmRunner, GemmShape, Packing, ReportCache, Workload,
};
use pacq_arch::MemLevel;
use pacq_fp16::WeightPrecision;
use proptest::prelude::*;

/// Path of a committed example template.
fn example(name: &str) -> String {
    format!("{}/../../examples/arch/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn read_example(name: &str) -> String {
    let path = example(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// A unique scratch directory per case (cases run concurrently).
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let mut p = std::env::temp_dir();
    p.push(format!(
        "pacq-arch-tpl-{}-{tag}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&p);
    p
}

// ---------------------------------------------------------------------
// Committed examples.
// ---------------------------------------------------------------------

#[test]
fn committed_examples_validate_and_reproduce_the_builders() {
    let volta = ArchTemplate::load(&read_example("volta_like.toml"), "volta_like.toml")
        .expect("volta_like.toml validates");
    assert_eq!(volta, ArchTemplate::volta_like());
    assert_eq!(volta.digest(), ArchTemplate::volta_like().digest());
    assert_eq!(volta.architecture().unwrap(), Architecture::StandardDequant);

    let pacq =
        ArchTemplate::load(&read_example("pacq.toml"), "pacq.toml").expect("pacq.toml validates");
    assert_eq!(pacq, ArchTemplate::pacq());
    assert_eq!(pacq.architecture().unwrap(), Architecture::Pacq);
    assert_ne!(pacq.digest(), volta.digest());

    let is = ArchTemplate::load(
        &read_example("input_stationary.toml"),
        "input_stationary.toml",
    )
    .expect("input_stationary.toml validates");
    assert_eq!(is, ArchTemplate::input_stationary());
    assert_eq!(is.architecture().unwrap(), Architecture::InputStationary);
    assert_ne!(is.digest(), volta.digest());
    assert_ne!(is.digest(), pacq.digest());
    // Round-trip digest stability through the canonical rendering.
    let rendered = ArchTemplate::load(&is.render(), "is-rendered").unwrap();
    assert_eq!(rendered.digest(), is.digest());

    // The JSON twin is the *same design point* as the TOML rendering:
    // identical template, identical digest, despite the different
    // surface syntax.
    let json = ArchTemplate::load(&read_example("volta_like.json"), "volta_like.json")
        .expect("volta_like.json validates");
    assert_eq!(json, volta);
    assert_eq!(json.digest(), volta.digest());
}

#[test]
fn committed_examples_derive_the_hardcoded_machine() {
    let volta = ArchTemplate::load(&read_example("volta_like.toml"), "volta_like.toml").unwrap();
    let cfg = volta.sm_config();
    assert_eq!(cfg.tensor_cores, pacq::SmConfig::volta_like().tensor_cores);
    assert_eq!(cfg.dp_width, pacq::SmConfig::volta_like().dp_width);
    // The derived energy model prices exactly like the default one.
    let derived = volta.energy_model().expect("derives");
    let builtin = pacq::EnergyModel::new(&pacq::SmConfig::volta_like());
    assert_eq!(derived.energy_canonical(), builtin.energy_canonical());
}

// ---------------------------------------------------------------------
// Bit-identical reports through the CLI, on both backends.
// ---------------------------------------------------------------------

/// The result digests `pacq exec` prints — the bit-identity witness
/// for the computed output matrix, free of wall-clock noise.
fn digests(out: &str) -> Vec<&str> {
    out.split("digest ")
        .skip(1)
        .filter_map(|t| t.split([',', ')', ' ']).next())
        .collect()
}

#[test]
fn templates_reproduce_hardcoded_reports_through_exec_check() {
    for (tpl, arch) in [
        ("volta_like.toml", "std"),
        ("pacq.toml", "pacq"),
        ("input_stationary.toml", "is"),
    ] {
        for backend in ["scalar", "batched"] {
            let base = [
                "exec".to_string(),
                "--shape".to_string(),
                "m16n32k128".to_string(),
                "--group".to_string(),
                "g32".to_string(),
                "--check".to_string(),
                format!("--backend={backend}"),
            ];
            let mut builtin = base.to_vec();
            builtin.extend(["--arch".to_string(), arch.to_string()]);
            let builtin = pacq::cli::run(&builtin)
                .unwrap_or_else(|e| panic!("builtin {arch}/{backend}: {e}"));
            assert!(builtin.contains("check OK"), "{builtin}");

            let mut templated = base.to_vec();
            templated.extend(["--arch-template".to_string(), example(tpl)]);
            let templated = pacq::cli::run(&templated)
                .unwrap_or_else(|e| panic!("template {tpl}/{backend}: {e}"));
            assert!(templated.contains("check OK"), "{templated}");

            assert!(!digests(&builtin).is_empty(), "{builtin}");
            assert_eq!(
                digests(&builtin),
                digests(&templated),
                "{tpl} on {backend} must reproduce the hardcoded result bit for bit\nbuiltin: {builtin}\ntemplated: {templated}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Cache-key binding: template identity is part of every key.
// ---------------------------------------------------------------------

#[test]
fn templates_with_different_energies_never_share_a_cache_entry() {
    let dir = scratch_dir("energy-edit");
    let cache = Arc::new(ReportCache::open(&dir).expect("cache opens"));
    let wl = Workload::new(GemmShape::new(16, 32, 64), WeightPrecision::Int4);

    let runner_for = |tpl: &ArchTemplate| {
        GemmRunner::new()
            .with_config(tpl.sm_config())
            .with_energy_model(tpl.energy_model().expect("derives"))
            .with_template_digest(tpl.digest())
            .with_cache(Arc::clone(&cache))
    };

    let original = ArchTemplate::volta_like();
    let mut edited = original.clone();
    edited.l1.access_energy_pj_per_word16 = Some(3.5);
    assert_ne!(original.digest(), edited.digest());

    let a = runner_for(&original)
        .analyze(Architecture::StandardDequant, wl)
        .expect("runs");
    // Same SmConfig, same workload — but a different machine. A shared
    // entry here would serve the original template's energies under the
    // edited template's name.
    let b = runner_for(&edited)
        .analyze(Architecture::StandardDequant, wl)
        .expect("runs");
    assert_eq!(cache.hits(), 0, "edited template must not hit the cache");
    assert_eq!(cache.misses(), 2);
    assert_eq!(a.stats.total_cycles, b.stats.total_cycles);
    assert_ne!(
        a.energy.total_pj().to_bits(),
        b.energy.total_pj().to_bits(),
        "the edited L1 energy must be visible in the report"
    );

    // Re-running the original template is a hit: binding is by content
    // digest, not by load order or path.
    let a2 = runner_for(&original)
        .analyze(Architecture::StandardDequant, wl)
        .expect("runs");
    assert_eq!(cache.hits(), 1);
    assert_eq!(
        a.energy.total_pj().to_bits(),
        a2.energy.total_pj().to_bits()
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn template_digest_distinguishes_builtin_from_templated_identity() {
    let tpl = ArchTemplate::volta_like();
    let builtin = GemmRunner::new();
    let templated = GemmRunner::new()
        .with_energy_model(tpl.energy_model().unwrap())
        .with_template_digest(tpl.digest());
    assert_ne!(
        builtin.arch_id(),
        templated.arch_id(),
        "a templated machine is a distinct identity even when it prices identically"
    );
    assert!(templated.arch_id().contains(&tpl.digest()));
}

// ---------------------------------------------------------------------
// Property tests: round-trips and digest stability.
// ---------------------------------------------------------------------

fn any_dataflow() -> impl Strategy<Value = Dataflow> {
    prop_oneof![
        Just(Dataflow::WeightStationary),
        Just(Dataflow::OutputStationary),
        Just(Dataflow::InputStationary),
    ]
}

fn any_packing() -> impl Strategy<Value = Packing> {
    prop_oneof![Just(Packing::AlongK), Just(Packing::AlongN)]
}

fn any_energy() -> impl Strategy<Value = Option<f64>> {
    prop_oneof![
        Just(None),
        (1u32..10_000).prop_map(|e| Some(f64::from(e) / 16.0)),
    ]
}

/// Generated templates cover the whole schema surface, including
/// combinations `validate` would reject — parse/render must round-trip
/// any schema-conformant document, valid design point or not.
fn any_template() -> impl Strategy<Value = ArchTemplate> {
    (
        (
            (0u32..10_000).prop_map(|i| format!("design_{i}")),
            any_dataflow(),
            any_packing(),
            prop_oneof![Just(true), Just(false)],
            1usize..32,
            1usize..16,
        ),
        (
            prop_oneof![Just(4usize), Just(8), Just(16), Just(3)],
            prop_oneof![Just(1usize), Just(2), Just(4), Just(5)],
            1u32..64,
            1u64..1_048_576,
            1u64..1_048_576,
            8u64..65_536,
        ),
        (
            1usize..8,
            prop_oneof![Just(f64::INFINITY), (1u32..4096).prop_map(f64::from)],
            any_energy(),
            any_energy(),
            any_energy(),
            // Nested pair: the tuple-strategy impls cap at six slots.
            (
                any_energy(),
                prop_oneof![
                    Just(None),
                    (1u32..100).prop_map(|x| Some(f64::from(x) / 10.0))
                ],
            ),
        ),
    )
        .prop_map(
            |(
                (name, dataflow, packing, dequant, tc, dp),
                (width, dup, dwpc, rf, l1, buf_bits),
                (bufs, dram_bw, rf_e, l1_e, buf_e, (dram_e, activity_tolerance)),
            )| ArchTemplate {
                name,
                dataflow,
                packing,
                dequant,
                tensor_cores: tc,
                dp_units_per_tc: dp,
                dp_width: width,
                adder_tree_duplication: dup,
                dequant_weights_per_cycle: f64::from(dwpc),
                clock_hz: 400.0e6,
                register_file: MemLevel {
                    capacity_bytes: rf,
                    access_energy_pj_per_word16: rf_e,
                },
                l1: MemLevel {
                    capacity_bytes: l1,
                    access_energy_pj_per_word16: l1_e,
                },
                operand_buffer_bits: buf_bits - buf_bits % 8,
                operand_buffers: bufs,
                operand_buffer_energy_pj_per_word16: buf_e,
                dram_bytes_per_cycle: dram_bw,
                dram_energy_pj_per_word16: dram_e,
                activity_tolerance,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// TOML: parse(render(t)) == t, and the digest survives.
    #[test]
    fn toml_rendering_round_trips(tpl in any_template()) {
        let text = tpl.render();
        let back = ArchTemplate::parse(&text, "prop.toml").expect("round-trip parses");
        prop_assert_eq!(&back, &tpl);
        prop_assert_eq!(back.digest(), tpl.digest());
    }

    /// JSON: parse(render_json(t)) == t, and the digest equals the
    /// TOML digest — identity is content, not syntax.
    #[test]
    fn json_rendering_round_trips(tpl in any_template()) {
        let text = tpl.render_json();
        let back = ArchTemplate::parse(&text, "prop.json").expect("round-trip parses");
        prop_assert_eq!(&back, &tpl);
        prop_assert_eq!(back.digest(), tpl.digest());
    }

    /// Injected TOML noise (comments, blank lines) never changes the
    /// parsed template or its digest.
    #[test]
    fn formatting_noise_is_identity_neutral(tpl in any_template(), seed in 0u8..8) {
        let text = tpl.render();
        let noisy: String = text
            .lines()
            .enumerate()
            .map(|(i, l)| {
                if i as u8 % 4 == seed % 4 {
                    format!("{l}   # noise\n\n")
                } else {
                    format!("{l}\n")
                }
            })
            .collect();
        let back = ArchTemplate::parse(&noisy, "noisy.toml").expect("still parses");
        prop_assert_eq!(&back, &tpl);
        prop_assert_eq!(back.digest(), tpl.digest());
    }

    /// Any single-field content change moves the digest.
    #[test]
    fn digest_tracks_every_field(tpl in any_template()) {
        let base = tpl.digest();
        let mut cases: Vec<ArchTemplate> = Vec::new();
        let mut t = tpl.clone();
        t.tensor_cores += 1;
        cases.push(t);
        let mut t = tpl.clone();
        t.register_file.capacity_bytes += 8;
        cases.push(t);
        let mut t = tpl.clone();
        t.l1.access_energy_pj_per_word16 =
            Some(tpl.l1.access_energy_pj_per_word16.unwrap_or(0.0) + 0.25);
        cases.push(t);
        let mut t = tpl.clone();
        t.dequant = !tpl.dequant;
        cases.push(t);
        for edited in cases {
            prop_assert_ne!(edited.digest(), base.clone());
        }
    }
}
