//! End-to-end integration tests spanning every crate: quantize → pack →
//! simulate → execute → price.

use pacq::{Architecture, Comparison, GemmRunner, GemmShape, GroupShape, NumericsMode, Workload};
use pacq_fp16::WeightPrecision;
use pacq_quant::synth::SynthGenerator;
use pacq_quant::MatrixF32;

fn rel_err(got: &MatrixF32, want: &MatrixF32) -> f64 {
    let d = MatrixF32::from_fn(got.rows(), got.cols(), |r, c| {
        got.get(r, c) - want.get(r, c)
    });
    d.frobenius_norm() / want.frobenius_norm().max(1e-12)
}

#[test]
fn full_pipeline_int4() {
    let mut gen = SynthGenerator::new(100);
    let weights = gen.llm_weights(128, 32);
    let a = gen.llm_activations(8, 128).to_f16();

    let runner = GemmRunner::new()
        .with_group(GroupShape::along_k(32))
        .with_numerics(NumericsMode::Wide);

    // Quantize + pack for each flow.
    let p_n = runner
        .quantize_and_pack(&weights, WeightPrecision::Int4, Architecture::Pacq)
        .expect("packs along n");
    let p_k = runner
        .quantize_and_pack(&weights, WeightPrecision::Int4, Architecture::PackedK)
        .expect("packs along k");

    // Functional execution agrees with the oracle on every flow.
    let oracle = pacq_simt::reference(&a, &p_n);
    let std = runner
        .execute(Architecture::StandardDequant, &a, &p_k)
        .unwrap();
    let pk = runner.execute(Architecture::PackedK, &a, &p_k).unwrap();
    let pq = runner.execute(Architecture::Pacq, &a, &p_n).unwrap();
    assert!(
        rel_err(&std, &oracle) < 5e-3,
        "std: {}",
        rel_err(&std, &oracle)
    );
    assert!(
        rel_err(&pk, &oracle) < 5e-3,
        "pk: {}",
        rel_err(&pk, &oracle)
    );
    assert!(
        rel_err(&pq, &oracle) < 5e-3,
        "pq: {}",
        rel_err(&pq, &oracle)
    );
}

#[test]
fn pipeline_int2() {
    let mut gen = SynthGenerator::new(200);
    let weights = gen.llm_weights(64, 32);
    let a = gen.llm_activations(4, 64).to_f16();

    let runner = GemmRunner::new()
        .with_group(GroupShape::along_k(32))
        .with_numerics(NumericsMode::Wide);
    let p_n = runner
        .quantize_and_pack(&weights, WeightPrecision::Int2, Architecture::Pacq)
        .expect("packs along n");
    let oracle = pacq_simt::reference(&a, &p_n);
    let pq = runner.execute(Architecture::Pacq, &a, &p_n).unwrap();
    assert!(
        rel_err(&pq, &oracle) < 5e-3,
        "int2 pacq: {}",
        rel_err(&pq, &oracle)
    );
}

#[test]
fn analysis_pipeline_all_architectures_all_precisions() {
    let runner = GemmRunner::new();
    for precision in [WeightPrecision::Int4, WeightPrecision::Int2] {
        for shape in [
            GemmShape::M16N16K16,
            GemmShape::new(32, 256, 512),
            GemmShape::new(16, 4096, 4096),
        ] {
            let wl = Workload::new(shape, precision);
            let reports: Vec<_> = [
                Architecture::StandardDequant,
                Architecture::PackedK,
                Architecture::Pacq,
            ]
            .iter()
            .map(|&arch| runner.analyze(arch, wl).unwrap())
            .collect();
            for r in &reports {
                assert!(r.stats.total_cycles > 0, "{wl} {:?}: zero cycles", r.arch);
                assert!(r.total_energy_pj() > 0.0);
                assert!(r.edp_pj_s > 0.0);
                assert!(
                    r.stats.total_cycles >= r.stats.tc_cycles,
                    "total < tc cycles on {:?}",
                    r.arch
                );
            }
            let cmp = Comparison::new(reports);
            let edp = cmp.normalized_edp();
            assert!(
                edp[2] < edp[0],
                "{wl}: PacQ EDP {} !< std {}",
                edp[2],
                edp[0]
            );
        }
    }
}

#[test]
fn two_dimensional_groups_reduce_scale_fetches_end_to_end() {
    let wl = Workload::new(GemmShape::new(16, 4096, 4096), WeightPrecision::Int4);
    let g1 = GemmRunner::new()
        .with_group(GroupShape::G128)
        .analyze(Architecture::Pacq, wl)
        .unwrap();
    let g2 = GemmRunner::new()
        .with_group(GroupShape::G32X4)
        .analyze(Architecture::Pacq, wl)
        .unwrap();
    assert_eq!(
        g1.stats.ops.scale_fetches,
        4 * g2.stats.ops.scale_fetches,
        "g[32,4] should cut scale fetches 4x"
    );
}

#[test]
fn weight_storage_shrinks_as_advertised() {
    // Figure 1 motivation: Llama2-70B needs 131.6 GB at FP16 but 35.8 GB
    // at INT4 — weight storage shrinks ~3.7-4x (scales add back a little).
    let mut gen = SynthGenerator::new(9);
    let w = gen.llm_weights(1024, 256);
    let runner = GemmRunner::new();
    let packed = runner
        .quantize_and_pack(&w, WeightPrecision::Int4, Architecture::Pacq)
        .expect("packs");
    let fp16_bits = (1024 * 256 * 16) as f64;
    let ratio = fp16_bits / packed.storage_bits() as f64;
    assert!((3.5..4.0).contains(&ratio), "compression ratio = {ratio}");
}
