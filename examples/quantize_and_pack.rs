//! Weight-only quantization walkthrough: quantize an LLM-like matrix
//! with every Table II group geometry, inspect error metrics and the
//! perplexity proxy, and show the bit-level packed artifact including
//! the `B + 1032` biased codes the PacQ hardware consumes.
//!
//! Run with: `cargo run --release --example quantize_and_pack`

use pacq::{GroupShape, PackDim, PackedMatrix, RtnQuantizer};
use pacq_fp16::{Fp16, WeightPrecision};
use pacq_quant::awq::AwqScaler;
use pacq_quant::evaluate_rtn;
use pacq_quant::gptq::GptqQuantizer;
use pacq_quant::lm::TinyLm;
use pacq_quant::synth::SynthGenerator;

fn main() -> pacq::PacqResult<()> {
    let mut generator = SynthGenerator::new(7);
    let weights = generator.llm_weights(512, 128);
    let activations = generator.llm_activations(16, 512);

    // ------------------------------------------------------------------
    // Table II-style group study: weight error and output perturbation.
    // ------------------------------------------------------------------
    println!("== RTN INT4 quantization error by group geometry (512x128 weights) ==");
    println!(
        "{:<10} {:>12} {:>12} {:>16}",
        "group", "weight MSE", "SQNR (dB)", "output rel err"
    );
    for group in [
        GroupShape::G128,
        GroupShape::G32X4,
        GroupShape::G256,
        GroupShape::G64X4,
    ] {
        let e = evaluate_rtn(&weights, &activations, WeightPrecision::Int4, group)?;
        println!(
            "{:<10} {:>12.3e} {:>12.2} {:>16.4}",
            group.to_string(),
            e.weight_mse,
            e.weight_sqnr_db,
            e.output_rel_err
        );
    }

    // ------------------------------------------------------------------
    // Algorithm upgrades that drop into the same PacQ pipeline.
    // ------------------------------------------------------------------
    println!("\n== quantizer comparison (output rel err, INT4 g128, salient activations) ==");
    {
        let mut g2 = SynthGenerator::new(70);
        let w = g2.llm_weights(256, 64);
        let base = g2.llm_activations(16, 256);
        // Boost a few channels to emulate salient activations.
        let acts = pacq_quant::MatrixF32::from_fn(16, 256, |m, k| {
            base.get(m, k) * if k % 41 == 0 { 15.0 } else { 1.0 }
        });
        let out_err = |deq: &pacq_quant::MatrixF32| {
            let r = acts.matmul(&w);
            let q = acts.matmul(deq);
            let d = pacq_quant::MatrixF32::from_fn(r.rows(), r.cols(), |i, j| {
                r.get(i, j) - q.get(i, j)
            });
            d.frobenius_norm() / r.frobenius_norm().max(1e-30)
        };
        let group = GroupShape::along_k(128);
        let rtn = RtnQuantizer::new(WeightPrecision::Int4, group).quantize(&w)?;
        println!(
            "  RTN (symmetric):        {:.5}",
            out_err(&rtn.dequantize())
        );
        let asym = RtnQuantizer::asymmetric(WeightPrecision::Int4, group).quantize(&w)?;
        println!(
            "  RTN (asymmetric):       {:.5}",
            out_err(&asym.dequantize())
        );
        let gptq = GptqQuantizer::new(WeightPrecision::Int4, group)?.quantize(&w, &acts)?;
        println!(
            "  GPTQ (Hessian-aware):   {:.5}",
            out_err(&gptq.dequantize())
        );
        let awq = AwqScaler::new().search(&w, &acts, WeightPrecision::Int4, group)?;
        println!(
            "  AWQ (activation-aware): {:.5} (alpha = {})",
            awq.output_rel_err, awq.alpha
        );
    }

    // ------------------------------------------------------------------
    // Perplexity proxy (the Table II substitution).
    // ------------------------------------------------------------------
    println!("\n== perplexity proxy (TinyLm, sequences sampled from the fp16 model) ==");
    let lm = TinyLm::new(2024, 64, 128, 256);
    let tokens = lm.sample(0, 600, 99);
    println!("{:<22} {:>10}", "model", "ppl");
    println!("{:<22} {:>10.3}", "fp16 baseline", lm.perplexity(&tokens));
    for group in [
        GroupShape::G128,
        GroupShape::G32X4,
        GroupShape::G256,
        GroupShape::G64X4,
    ] {
        let q = lm.quantize_ffn(WeightPrecision::Int4, group)?;
        println!(
            "{:<22} {:>10.3}",
            format!("W4A16 {group}"),
            q.perplexity(&tokens)
        );
    }

    // ------------------------------------------------------------------
    // The packed artifact, bit by bit.
    // ------------------------------------------------------------------
    println!("\n== packed P(B_4)_n artifact ==");
    let q = RtnQuantizer::new(WeightPrecision::Int4, GroupShape::G32X4).quantize(&weights)?;
    let packed = PackedMatrix::pack(&q, PackDim::N)?;
    println!("{packed}");
    println!("first word (k=0, lanes n=0..3):");
    let word = packed.word(0, 0);
    for lane in 0..4 {
        let signed = word.signed_lane(WeightPrecision::Int4, lane);
        let biased = word.biased_lane(WeightPrecision::Int4, lane);
        let fp = Fp16::from_f32((signed as i32 + 1032) as f32);
        println!(
            "  lane {lane}: B = {signed:>3}  biased code = {biased:>2}  B+1032 = fp16 0x{:04X} \
             (exp {:05b}, mantissa {:010b})",
            fp.to_bits(),
            fp.biased_exponent(),
            fp.mantissa()
        );
    }
    println!(
        "\nnote the constant exponent 11001 and the code sitting in the low \
         mantissa bits —\nobservations ① and ② that make the parallel FP-INT \
         multiplier possible (§IV)."
    );

    // ------------------------------------------------------------------
    // The deployable artifact round-trips through the binary container.
    // ------------------------------------------------------------------
    let bytes = pacq_quant::to_bytes(&packed);
    let restored = pacq_quant::from_bytes(&bytes)?;
    assert_eq!(restored, packed);
    println!(
        "\nserialized artifact: {} bytes ({:.2} bits/weight incl. scales & container)",
        bytes.len(),
        bytes.len() as f64 * 8.0 / (packed.k() * packed.n()) as f64
    );
    Ok(())
}
