//! Dataflow design-space explorer: sweep packing direction, weight
//! precision, adder-tree duplication and DP width, and print the cost
//! surface — the §III/§V design-space exploration as a tool.
//!
//! Run with: `cargo run --release --example dataflow_explorer`

use pacq::{Architecture, GemmRunner, GemmShape, GroupShape, SmConfig, Workload};
use pacq_fp16::WeightPrecision;

fn main() -> pacq::PacqResult<()> {
    let shape = GemmShape::new(16, 1024, 1024);

    println!("== packing direction × precision ({shape}) ==");
    println!(
        "{:<30} {:>12} {:>12} {:>14} {:>12}",
        "configuration", "cycles", "RF accesses", "fetch instrs", "evictions"
    );
    let runner = GemmRunner::new();
    for precision in [WeightPrecision::Int4, WeightPrecision::Int2] {
        for arch in [
            Architecture::StandardDequant,
            Architecture::PackedK,
            Architecture::Pacq,
        ] {
            let r = runner.analyze(arch, Workload::new(shape, precision))?;
            println!(
                "{:<30} {:>12} {:>12} {:>14} {:>12}",
                format!("{arch} / {precision}"),
                r.stats.total_cycles,
                r.stats.rf.total_accesses(),
                r.stats.fetch_instructions,
                r.stats.buffer_evictions,
            );
        }
    }

    println!("\n== adder-tree duplication (PacQ, INT4, {shape}) ==");
    println!(
        "{:<14} {:>12} {:>16} {:>18}",
        "duplication", "cycles", "TC power (units)", "thr/watt (norm)"
    );
    let mut base_tpw = None;
    for dup in [1usize, 2, 4] {
        let mut cfg = SmConfig::volta_like();
        cfg.adder_tree_duplication = dup;
        let runner = GemmRunner::new().with_config(cfg);
        let r = runner.analyze(
            Architecture::Pacq,
            Workload::new(shape, WeightPrecision::Int4),
        )?;
        let unit = pacq_energy::GemmUnit::ParallelDp {
            width: 4,
            duplication: dup,
        };
        let tpw = 1.0 / (r.stats.total_cycles as f64 * unit.power_units());
        let base = *base_tpw.get_or_insert(tpw);
        println!(
            "{:<14} {:>12} {:>16.2} {:>17.2}x",
            dup,
            r.stats.total_cycles,
            unit.power_units(),
            tpw / base
        );
    }

    println!("\n== DP unit width (PacQ vs baseline, INT4, {shape}) ==");
    println!(
        "{:<10} {:>14} {:>14} {:>10}",
        "width", "baseline cyc", "PacQ cyc", "ratio"
    );
    for width in [4usize, 8, 16] {
        let mut cfg = SmConfig::volta_like();
        cfg.dp_width = width;
        let runner = GemmRunner::new().with_config(cfg);
        let wl = Workload::new(shape, WeightPrecision::Int4);
        let base = runner.analyze(Architecture::PackedK, wl)?;
        let pacq = runner.analyze(Architecture::Pacq, wl)?;
        println!(
            "DP-{:<8} {:>14} {:>14} {:>9.2}x",
            width,
            base.stats.total_cycles,
            pacq.stats.total_cycles,
            base.stats.total_cycles as f64 / pacq.stats.total_cycles as f64
        );
    }

    println!("\n== quantization group geometry (PacQ INT4, scale fetches) ==");
    println!(
        "{:<12} {:>16} {:>18}",
        "group", "scale fetches", "fixup segments"
    );
    for group in [
        GroupShape::G128,
        GroupShape::G32X4,
        GroupShape::G256,
        GroupShape::G64X4,
    ] {
        let runner = GemmRunner::new().with_group(group);
        let r = runner.analyze(
            Architecture::Pacq,
            Workload::new(shape, WeightPrecision::Int4),
        )?;
        println!(
            "{:<12} {:>16} {:>18}",
            group.to_string(),
            r.stats.ops.scale_fetches,
            r.stats.ops.offset_fixups
        );
    }
    Ok(())
}
