//! Quickstart: quantize a weight matrix, pack it for PacQ, run the GEMM
//! functionally through the bit-accurate datapath, and compare the three
//! architectures' cost on the same workload.
//!
//! Run with: `cargo run --release --example quickstart`

use pacq::{Architecture, Comparison, GemmRunner, GemmShape, GroupShape, NumericsMode, Workload};
use pacq_fp16::WeightPrecision;
use pacq_quant::synth::SynthGenerator;

fn main() -> pacq::PacqResult<()> {
    // ------------------------------------------------------------------
    // 1. Make an LLM-like weight matrix and some activations.
    // ------------------------------------------------------------------
    let mut generator = SynthGenerator::new(42);
    let weights = generator.llm_weights(256, 64); // B: [k=256, n=64]
    let activations = generator.llm_activations(16, 256).to_f16(); // A: [m=16, k]

    // ------------------------------------------------------------------
    // 2. Quantize to INT4 and pack along n (the PacQ format P(B_4)_n).
    // ------------------------------------------------------------------
    let runner = GemmRunner::new()
        .with_group(GroupShape::G128)
        .with_numerics(NumericsMode::Wide);
    let packed = runner.quantize_and_pack(&weights, WeightPrecision::Int4, Architecture::Pacq)?;
    println!(
        "packed {} weights into {} INT16 words ({} bits incl. scales)",
        packed.k() * packed.n(),
        packed.total_words(),
        packed.storage_bits()
    );

    // ------------------------------------------------------------------
    // 3. Execute the GEMM through the modeled PacQ datapath.
    // ------------------------------------------------------------------
    let c = runner.execute(Architecture::Pacq, &activations, &packed)?;
    let reference = pacq_simt::reference(&activations, &packed);
    let mut max_err = 0f32;
    for i in 0..c.rows() {
        for j in 0..c.cols() {
            max_err = max_err.max((c.get(i, j) - reference.get(i, j)).abs());
        }
    }
    println!("functional GEMM max abs deviation from oracle: {max_err:.6}");

    // ------------------------------------------------------------------
    // 4. Compare cost on a Llama2-scale workload.
    // ------------------------------------------------------------------
    let wl = Workload::new(GemmShape::new(16, 4096, 4096), WeightPrecision::Int4);
    let cmp = Comparison::new(vec![
        runner.analyze(Architecture::StandardDequant, wl)?,
        runner.analyze(Architecture::PackedK, wl)?,
        runner.analyze(Architecture::Pacq, wl)?,
    ]);
    println!("\nworkload {wl}:");
    println!(
        "{:<28} {:>12} {:>14} {:>10} {:>10}",
        "architecture", "cycles", "energy (uJ)", "EDP(norm)", "speedup"
    );
    let edp = cmp.normalized_edp();
    let speed = cmp.normalized_speedup();
    for (i, r) in cmp.reports().iter().enumerate() {
        println!(
            "{:<28} {:>12} {:>14.2} {:>10.3} {:>9.2}x",
            r.arch.to_string(),
            r.stats.total_cycles,
            r.total_energy_pj() / 1e6,
            edp[i],
            speed[i]
        );
    }
    Ok(())
}
