//! LLM serving simulation: a full Llama2-7B forward pass (all 32 decoder
//! blocks) under a mixed prefill + decode serving schedule, comparing the
//! three architectures end to end — the multi-batch serving scenario the
//! paper's introduction argues is the real deployment regime (Orca [22]).
//!
//! Run with: `cargo run --release --example serving_sim`

use pacq::llama::llama2_7b_layers;
use pacq::{Architecture, GemmRunner, Workload};
use pacq_fp16::WeightPrecision;

/// One serving phase: how many tokens are in flight per model pass.
struct Phase {
    name: &'static str,
    tokens_in_flight: usize,
    passes: usize,
}

fn main() -> pacq::PacqResult<()> {
    const LAYERS: usize = 32; // Llama2-7B decoder blocks

    // A serving mix: one 512-token prefill, then batched decode steps
    // (16 concurrent sequences, 128 steps) — batch sizes rounded to the
    // warp-tile granularity.
    let schedule = [
        Phase {
            name: "prefill (512 tok)",
            tokens_in_flight: 512,
            passes: 1,
        },
        Phase {
            name: "decode (batch 16)",
            tokens_in_flight: 16,
            passes: 128,
        },
    ];

    let runner = GemmRunner::new();
    let precision = WeightPrecision::Int4;

    println!("Llama2-7B x{LAYERS} blocks, {precision} weights, serving schedule:");
    for phase in &schedule {
        println!("  {} x{} passes", phase.name, phase.passes);
    }

    let mut totals: [(f64, f64); 3] = [(0.0, 0.0); 3]; // (seconds, joules)
    let arches = [
        Architecture::StandardDequant,
        Architecture::PackedK,
        Architecture::Pacq,
    ];

    println!(
        "\n{:<20} {:<28} {:>12} {:>14}",
        "phase", "architecture", "time (ms)", "energy (mJ)"
    );
    for phase in &schedule {
        for (slot, &arch) in arches.iter().enumerate() {
            let mut secs = 0f64;
            let mut joules = 0f64;
            for layer in llama2_7b_layers(phase.tokens_in_flight) {
                let r = runner.analyze(arch, Workload::new(layer.shape, precision))?;
                secs += r.latency_s * (phase.passes * LAYERS) as f64;
                joules += r.total_energy_pj() * 1e-12 * (phase.passes * LAYERS) as f64;
            }
            totals[slot].0 += secs;
            totals[slot].1 += joules;
            println!(
                "{:<20} {:<28} {:>12.2} {:>14.2}",
                phase.name,
                arch.to_string(),
                secs * 1e3,
                joules * 1e3
            );
        }
    }

    println!("\n-- end-to-end schedule totals (per SM at 400 MHz) --");
    println!(
        "{:<28} {:>12} {:>14} {:>12} {:>12}",
        "architecture", "time (ms)", "energy (mJ)", "speedup", "EDP (norm)"
    );
    let base_edp = totals[0].0 * totals[0].1;
    for (slot, &arch) in arches.iter().enumerate() {
        let (secs, joules) = totals[slot];
        println!(
            "{:<28} {:>12.2} {:>14.2} {:>11.2}x {:>12.3}",
            arch.to_string(),
            secs * 1e3,
            joules * 1e3,
            totals[0].0 / secs,
            (secs * joules) / base_edp
        );
    }
    println!(
        "\n(relative numbers are the meaningful ones: one simulated SM serves the\n\
         whole model here, so absolute times are not wall-clock predictions.)"
    );
    Ok(())
}
