//! Llama2-7B decoder-block sweep: simulate every GEMM layer of one
//! decoder block at several batch sizes on all three architectures —
//! the scenario the paper's introduction motivates (multi-batch LLM
//! serving is compute-bound, so weight-only quantization alone does not
//! speed it up; PacQ does).
//!
//! Run with: `cargo run --release --example llama_ffn`

use pacq::llama::llama2_7b_layers;
use pacq::{Architecture, GemmRunner, Workload};
use pacq_fp16::WeightPrecision;

fn main() -> pacq::PacqResult<()> {
    let runner = GemmRunner::new();
    let precision = WeightPrecision::Int4;

    for batch in [16, 64, 256] {
        println!("=== Llama2-7B decoder block, batch {batch}, {precision} weights ===");
        println!(
            "{:<16} {:<18} {:>9} {:>9} {:>9} {:>11}",
            "layer", "shape", "std", "P(B)k", "PacQ", "EDP vs std"
        );

        let mut totals = [0u64; 3];
        let mut total_edp = [0f64; 3];
        for layer in llama2_7b_layers(batch) {
            let wl = Workload::new(layer.shape, precision);
            let std = runner.analyze(Architecture::StandardDequant, wl)?;
            let pk = runner.analyze(Architecture::PackedK, wl)?;
            let pq = runner.analyze(Architecture::Pacq, wl)?;
            println!(
                "{:<16} {:<18} {:>9} {:>9} {:>9} {:>10.1}%",
                layer.name,
                layer.shape.to_string(),
                kcycles(std.stats.total_cycles),
                kcycles(pk.stats.total_cycles),
                kcycles(pq.stats.total_cycles),
                100.0 * (1.0 - pq.edp_normalized_to(&std)),
            );
            for (t, r) in totals.iter_mut().zip([&std, &pk, &pq]) {
                *t += r.stats.total_cycles;
            }
            for (t, r) in total_edp.iter_mut().zip([&std, &pk, &pq]) {
                *t += r.edp_pj_s;
            }
        }
        println!(
            "{:<16} {:<18} {:>9} {:>9} {:>9} {:>10.1}%",
            "TOTAL",
            "",
            kcycles(totals[0]),
            kcycles(totals[1]),
            kcycles(totals[2]),
            100.0 * (1.0 - total_edp[2] / total_edp[0]),
        );
        println!(
            "block speedup: PacQ {:.2}x over standard, {:.2}x over P(B)k\n",
            totals[0] as f64 / totals[2] as f64,
            totals[1] as f64 / totals[2] as f64,
        );
    }
    Ok(())
}

fn kcycles(c: u64) -> String {
    if c >= 1_000_000 {
        format!("{:.1}M", c as f64 / 1e6)
    } else {
        format!("{:.1}k", c as f64 / 1e3)
    }
}
