#!/usr/bin/env python3
"""NDJSON client for `pacq serve` (protocol pacq-serve/v1).

Drives a running server through a deterministic batch of `analyze`
requests, checks every reply, and writes the reply frames — sorted by
request id, exactly as received off the wire — to an output file. Two
passes against the same server configuration must produce byte-identical
output files (the CI serve-smoke job pins this).

The server's ephemeral port is discovered from its stdout log: pass
`--ready-log FILE` and the client polls for the `"event":"ready"` frame.

Usage:
    pacq serve --port 0 --cache store > server.log &
    python3 scripts/serve_client.py --ready-log server.log \
        --requests 200 --out responses.ndjson --shutdown
"""

import argparse
import json
import socket
import sys
import time

SCHEMA = "pacq-serve/v1"

# Deterministic request mix: 16-aligned shapes crossed with every
# architecture and precision the CLI accepts.
SHAPES = [
    (16, 256, 256),
    (16, 1024, 1024),
    (32, 512, 512),
    (16, 4096, 4096),
    (48, 768, 768),
]
ARCHS = ["pacq", "packedk", "std"]
PRECISIONS = ["int4", "int2"]


def request(i: int) -> dict:
    m, n, k = SHAPES[i % len(SHAPES)]
    return {
        "op": "analyze",
        "id": i,
        "shape": f"m{m}n{n}k{k}",
        "arch": ARCHS[i % len(ARCHS)],
        "precision": PRECISIONS[i % len(PRECISIONS)],
    }


def wait_for_ready(log_path: str, timeout_s: float) -> str:
    """Polls the server's stdout log for the ready frame; returns addr."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            with open(log_path, encoding="utf-8") as log:
                for line in log:
                    line = line.strip()
                    if not line.startswith("{"):
                        continue
                    frame = json.loads(line)
                    if frame.get("event") == "ready":
                        assert frame.get("schema") == SCHEMA, frame
                        return frame["addr"]
        except FileNotFoundError:
            pass
        time.sleep(0.05)
    sys.exit(f"error: no ready frame in {log_path} after {timeout_s}s")


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    addr = ap.add_mutually_exclusive_group(required=True)
    addr.add_argument("--addr", help="server address, host:port")
    addr.add_argument("--ready-log", help="server stdout log to poll for the ready frame")
    ap.add_argument("--requests", type=int, default=200)
    ap.add_argument("--out", required=True, help="reply frames, sorted by id")
    ap.add_argument("--shutdown", action="store_true", help="drain the server afterwards")
    ap.add_argument("--timeout", type=float, default=30.0)
    ap.add_argument(
        "--window",
        type=int,
        default=32,
        help="max in-flight requests; keep below the server's --queue "
        "capacity so backpressure (queue_full) never triggers",
    )
    ap.add_argument(
        "--expect-rate-limited",
        action="store_true",
        help="hammer mode: tolerate (and count) typed rate_limited error "
        "frames from an admission-controlled server; fail unless at "
        "least one arrives and every request is still answered",
    )
    args = ap.parse_args()

    where = args.addr or wait_for_ready(args.ready_log, args.timeout)
    host, _, port = where.rpartition(":")
    conn = socket.create_connection((host, int(port)), timeout=args.timeout)
    # Separate buffered handles: a single "rw" makefile is a
    # BufferedRWPair, which shares state between directions and
    # corrupts interleaved pipelined traffic.
    rd = conn.makefile("r", encoding="utf-8", newline="\n")
    wr = conn.makefile("w", encoding="utf-8", newline="\n")

    # Pipeline with a bounded in-flight window so the server's bounded
    # queue never answers queue_full; replies are unordered across
    # requests and matched by echoed id.
    replies = {}
    sent_at = {}
    latencies_us = []
    rate_limited = 0

    def collect_one() -> None:
        nonlocal rate_limited
        line = rd.readline()
        if not line:
            sys.exit("error: connection closed mid-batch")
        frame = json.loads(line)
        rid = frame.get("id")
        assert frame.get("schema") == SCHEMA, f"schema drift: {frame}"
        assert rid in sent_at, f"reply for unknown id {rid}"
        assert rid not in replies, f"duplicate reply for id {rid}"
        latencies_us.append(int((time.monotonic() - sent_at[rid]) * 1e6))
        if frame.get("ok") is True:
            assert "report" in frame, f"request {rid} reply has no report"
        else:
            error = frame.get("error") or {}
            assert args.expect_rate_limited and error.get("class") == "rate_limited", (
                f"request {rid} failed: {frame}"
            )
            rate_limited += 1
        replies[rid] = line

    for i in range(args.requests):
        if i - len(replies) >= args.window:
            collect_one()
        sent_at[i] = time.monotonic()
        wr.write(json.dumps(request(i)) + "\n")
        wr.flush()
    while len(replies) < args.requests:
        collect_one()
    assert sorted(replies) == list(range(args.requests)), "lost replies"
    if args.expect_rate_limited:
        assert rate_limited >= 1, "hammer mode saw no rate_limited frame"

    # Exact nearest-rank percentiles over every round trip; in hammer
    # mode the histogram includes the (cheap) rate-limited denials.
    latencies_us.sort()

    def pct(p: float) -> int:
        rank = max(1, min(len(latencies_us), -(-int(p * len(latencies_us)) // 100)))
        return latencies_us[rank - 1]

    print(
        f"latency_us: p50 {pct(50)} p95 {pct(95)} p99 {pct(99)} "
        f"(n {len(latencies_us)}, rate_limited {rate_limited})"
    )

    with open(args.out, "w", encoding="utf-8", newline="\n") as out:
        for rid in sorted(replies):
            out.write(replies[rid])

    # Stats frame: print the live tallies for the CI log.
    wr.write(json.dumps({"op": "stats", "id": args.requests}) + "\n")
    wr.flush()
    stats = json.loads(rd.readline())
    assert stats.get("ok") is True, f"stats failed: {stats}"
    print(f"stats: {json.dumps(stats, sort_keys=True)}")

    if args.shutdown:
        wr.write(json.dumps({"op": "shutdown", "id": args.requests + 1}) + "\n")
        wr.flush()
        ack = json.loads(rd.readline())
        assert ack.get("draining") is True, f"shutdown not acknowledged: {ack}"
    conn.close()
    print(f"ok: {args.requests} replies -> {args.out}")


if __name__ == "__main__":
    main()
